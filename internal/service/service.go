// Package service implements the failure-detection service architecture
// of the paper (Figure 2 and §1.5): a single Monitor per host performs
// the monitoring task — ingesting heartbeats and maintaining one accrual
// detector per monitored process — while any number of application-side
// interpreters (App) consume the suspicion levels through their own
// thresholds and policies.
//
// This is the decoupling the paper argues for: the monitor outputs raw
// suspicion levels; interpretation (conservative vs aggressive, one
// threshold or several) lives with each application, not inside the
// shared service. A library can still hand applications a binary
// interface — that is exactly what App does — but there is one
// interpretation module per application rather than one per host.
package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/transform"
)

// Factory builds a fresh accrual detector for a newly registered process.
// start is the registration time according to the monitor's clock.
type Factory func(id string, start time.Time) core.Detector

// Errors returned by the monitor.
var (
	// ErrUnknownProcess is returned for operations on a process that is
	// not registered (and auto-registration is off).
	ErrUnknownProcess = errors.New("service: unknown process")
	// ErrAlreadyRegistered is returned by Register for a duplicate id.
	ErrAlreadyRegistered = errors.New("service: process already registered")
)

// Monitor is the per-host monitoring component: it owns one accrual
// failure detector per monitored process and serialises all access to
// them. Monitor is safe for concurrent use.
type Monitor struct {
	clk          clock.Clock
	factory      Factory
	autoRegister bool

	mu    sync.Mutex
	procs map[string]core.Detector
}

// MonitorOption configures a Monitor.
type MonitorOption func(*Monitor)

// WithoutAutoRegister makes Heartbeat reject heartbeats from unregistered
// processes instead of registering them on first contact.
func WithoutAutoRegister() MonitorOption {
	return func(m *Monitor) { m.autoRegister = false }
}

// NewMonitor returns a monitor that timestamps registrations with clk and
// creates detectors with factory. Both are required.
func NewMonitor(clk clock.Clock, factory Factory, opts ...MonitorOption) *Monitor {
	m := &Monitor{
		clk:          clk,
		factory:      factory,
		autoRegister: true,
		procs:        make(map[string]core.Detector),
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// Register adds a monitored process. It returns ErrAlreadyRegistered if
// the id is already present.
func (m *Monitor) Register(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.procs[id]; ok {
		return fmt.Errorf("%w: %q", ErrAlreadyRegistered, id)
	}
	m.procs[id] = m.factory(id, m.clk.Now())
	return nil
}

// Deregister removes a monitored process and reports whether it was
// present.
func (m *Monitor) Deregister(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.procs[id]
	delete(m.procs, id)
	return ok
}

// Processes returns the sorted ids of all monitored processes.
func (m *Monitor) Processes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.procs))
	for id := range m.procs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Heartbeat routes a heartbeat to the detector of its sender,
// registering the sender first when auto-registration is on.
func (m *Monitor) Heartbeat(hb core.Heartbeat) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	det, ok := m.procs[hb.From]
	if !ok {
		if !m.autoRegister {
			return fmt.Errorf("%w: %q", ErrUnknownProcess, hb.From)
		}
		det = m.factory(hb.From, m.clk.Now())
		m.procs[hb.From] = det
	}
	det.Report(hb)
	return nil
}

// Suspicion returns the current suspicion level of one process.
func (m *Monitor) Suspicion(id string) (core.Level, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	det, ok := m.procs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProcess, id)
	}
	return det.Suspicion(m.clk.Now()), nil
}

// Snapshot returns the suspicion level of every monitored process at one
// instant.
func (m *Monitor) Snapshot() map[string]core.Level {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clk.Now()
	out := make(map[string]core.Level, len(m.procs))
	for id, det := range m.procs {
		out[id] = det.Suspicion(now)
	}
	return out
}

// Now exposes the monitor's clock reading, so that applications and
// interpreters share its notion of time.
func (m *Monitor) Now() time.Time { return m.clk.Now() }

// levelFunc returns a LevelFunc reading one process's level through the
// monitor's lock. The returned function reports zero for deregistered
// processes.
func (m *Monitor) levelFunc(id string) transform.LevelFunc {
	return func(now time.Time) core.Level {
		m.mu.Lock()
		defer m.mu.Unlock()
		det, ok := m.procs[id]
		if !ok {
			return 0
		}
		return det.Suspicion(now)
	}
}

// Policy builds one application-side binary interpreter over a suspicion
// level source. The three standard policies correspond to the paper's
// interpreters: the single-threshold D_T (Equation 2), the two-threshold
// D'_T (Algorithm 3) and the self-tuning Algorithm 1.
type Policy func(src transform.LevelFunc) core.BinaryDetector

// ConstantPolicy interprets levels with a fixed threshold (suspect iff
// level > threshold).
func ConstantPolicy(threshold core.Level) Policy {
	return func(src transform.LevelFunc) core.BinaryDetector {
		return transform.NewConstantThreshold(src, threshold)
	}
}

// HysteresisPolicy interprets levels with the two-threshold detector
// D'_T: suspect above high, trust again at or below low.
func HysteresisPolicy(high, low core.Level) Policy {
	return func(src transform.LevelFunc) core.BinaryDetector {
		return transform.NewHysteresis(src, high, low)
	}
}

// AdaptivePolicy interprets levels with Algorithm 1, the self-tuning
// ◇P transformation that needs no threshold parameter at all.
func AdaptivePolicy() Policy {
	return func(src transform.LevelFunc) core.BinaryDetector {
		return transform.NewAccrualToBinary(src)
	}
}

// TransitionHandler observes the S- and T-transitions of one application
// view. status is the new status after the transition.
type TransitionHandler func(proc string, tr core.Transition, status core.Status)

// App is one application's interpretation module: a binary view of every
// monitored process, built from the shared monitor's suspicion levels via
// the application's own policy. App is safe for concurrent use.
type App struct {
	name    string
	monitor *Monitor
	policy  Policy
	onTrans TransitionHandler

	mu    sync.Mutex
	views map[string]*appView
}

type appView struct {
	bin  core.BinaryDetector
	last core.Status
}

// AppOption configures an App.
type AppOption func(*App)

// WithTransitionHandler registers a callback invoked (synchronously,
// from the polling goroutine) on every transition this app observes.
func WithTransitionHandler(h TransitionHandler) AppOption {
	return func(a *App) { a.onTrans = h }
}

// NewApp returns a named interpretation module over the monitor.
func (m *Monitor) NewApp(name string, policy Policy, opts ...AppOption) *App {
	a := &App{
		name:    name,
		monitor: m,
		policy:  policy,
		views:   make(map[string]*appView),
	}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

func (a *App) view(id string) *appView {
	v, ok := a.views[id]
	if !ok {
		v = &appView{bin: a.policy(a.monitor.levelFunc(id)), last: core.Trusted}
		a.views[id] = v
	}
	return v
}

// Status queries this application's binary view of one process. Each call
// is one query in the oracle model (stateful policies advance on it).
func (a *App) Status(id string) (core.Status, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, err := a.monitor.Suspicion(id); err != nil {
		return 0, err
	}
	now := a.monitor.Now()
	v := a.view(id)
	s := v.bin.Query(now)
	a.noteTransition(id, v, s, now)
	return s, nil
}

// Poll queries every monitored process and returns the set of currently
// suspected ids, sorted. Views of processes that have been deregistered
// from the monitor are pruned, so long-lived applications do not
// accumulate state for departed processes.
func (a *App) Poll() []string {
	ids := a.monitor.Processes()
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.monitor.Now()
	current := make(map[string]bool, len(ids))
	var suspects []string
	for _, id := range ids {
		current[id] = true
		v := a.view(id)
		s := v.bin.Query(now)
		a.noteTransition(id, v, s, now)
		if s == core.Suspected {
			suspects = append(suspects, id)
		}
	}
	for id := range a.views {
		if !current[id] {
			delete(a.views, id)
		}
	}
	return suspects
}

func (a *App) noteTransition(id string, v *appView, s core.Status, now time.Time) {
	if s == v.last {
		return
	}
	kind := core.STransition
	if s == core.Trusted {
		kind = core.TTransition
	}
	v.last = s
	if a.onTrans != nil {
		a.onTrans(id, core.Transition{At: now, Kind: kind}, s)
	}
}

// Ranked returns all monitored processes ordered from least to most
// suspected (ties broken by id) — the worker-ranking usage pattern of the
// paper's Bag-of-Tasks example (§1.3).
func (m *Monitor) Ranked() []RankedProcess {
	snap := m.Snapshot()
	out := make([]RankedProcess, 0, len(snap))
	for id, lvl := range snap {
		out = append(out, RankedProcess{ID: id, Level: lvl})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RankedProcess pairs a process id with its suspicion level.
type RankedProcess struct {
	ID    string
	Level core.Level
}
