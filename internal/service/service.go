// Package service implements the failure-detection service architecture
// of the paper (Figure 2 and §1.5): a single Monitor per host performs
// the monitoring task — ingesting heartbeats and maintaining one accrual
// detector per monitored process — while any number of application-side
// interpreters (App) consume the suspicion levels through their own
// thresholds and policies.
//
// This is the decoupling the paper argues for: the monitor outputs raw
// suspicion levels; interpretation (conservative vs aggressive, one
// threshold or several) lives with each application, not inside the
// shared service. A library can still hand applications a binary
// interface — that is exactly what App does — but there is one
// interpretation module per application rather than one per host.
//
// # Concurrency
//
// The Monitor is the hot path of the whole service: every heartbeat from
// every monitored process and every suspicion query from every
// application lands on it. Its registry is therefore sharded — process
// ids are FNV-1a-hashed onto a fixed power-of-two number of shards, each
// with its own RWMutex-protected index — and each registered process
// carries its own small mutex around its detector. Heartbeats and
// queries for different processes never contend: they take a read lock
// on (usually different) shards plus the per-process lock. Registration
// and deregistration take one shard's write lock and never pause the
// other shards. Snapshot and Ranked walk the shards one at a time, so a
// full-registry read never stops the world either.
//
// Lock ordering is shard lock → entry lock; no code path acquires a
// shard lock while holding an entry lock, and no code path holds two
// entry locks at once.
//
// # Memory layout
//
// Entries live in per-shard slabs: chunked arrays addressed by a small
// integer index, with a free list so deregistration returns the slot for
// reuse instead of leaving a dead heap object behind. The shard map only
// carries id → slot index; at a million processes that replaces a
// million individually heap-allocated entries (each its own GC object,
// scattered across the heap) with a few thousand contiguous chunks the
// collector scans in bulk. Slots are guarded by a generation counter —
// odd while bound, even while free, bumped on every transition — so a
// handle resolved before a deregistration can never read or write the
// *next* process bound into the same slot: every detector access
// revalidates the generation under the entry lock and drops the
// operation on mismatch.
package service

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/telemetry"
	"accrual/internal/transform"
	"accrual/internal/transport/intern"
)

// Factory builds a fresh accrual detector for a newly registered process.
// start is the registration time according to the monitor's clock, or the
// arrival timestamp of the registering heartbeat when auto-registration
// triggered the creation.
type Factory func(id string, start time.Time) core.Detector

// Errors returned by the monitor.
var (
	// ErrUnknownProcess is returned for operations on a process that is
	// not registered (and auto-registration is off).
	ErrUnknownProcess = errors.New("service: unknown process")
	// ErrAlreadyRegistered is returned by Register for a duplicate id.
	ErrAlreadyRegistered = errors.New("service: process already registered")
)

// defaultShardCount is the registry shard count used unless overridden
// with WithShardCount. 64 shards keep the collision probability low into
// the tens of thousands of processes while costing ~6 KiB per idle
// Monitor.
const defaultShardCount = 64

// compactShardCount is the shard count ProfileCompact defaults to:
// at the million-process scale the profile targets, 512 shards keep the
// per-shard index maps below ~2k entries and spread write-lock traffic.
const compactShardCount = 512

// Profile selects the registry's memory/throughput trade-off.
type Profile int

const (
	// ProfileDefault is the general-purpose configuration: 64 shards and
	// detector-native estimator window sizes.
	ProfileDefault Profile = iota
	// ProfileCompact targets very large memberships (100k–1M+ processes
	// on one monitor): more shards (512 by default) and capped estimator
	// windows so per-process state stays small.
	ProfileCompact
)

// ParseProfile parses "default" or "compact" (the accruald -profile
// flag values).
func ParseProfile(s string) (Profile, error) {
	switch s {
	case "default", "":
		return ProfileDefault, nil
	case "compact":
		return ProfileCompact, nil
	}
	return ProfileDefault, fmt.Errorf("service: unknown profile %q (want default or compact)", s)
}

func (p Profile) String() string {
	if p == ProfileCompact {
		return "compact"
	}
	return "default"
}

// compactWindowCap bounds sampling-window estimators under
// ProfileCompact. 64 inter-arrival samples are enough for the window
// mean/variance estimates the detectors run on (the paper's experiments
// use windows of this order), and at 8 bytes a sample the cap keeps
// window state under ~1 KiB per process.
const compactWindowCap = 64

// EstimatorWindow sizes a detector's sampling window under this
// profile: the detector's native default def for ProfileDefault, capped
// at 64 samples for ProfileCompact. Detector factories consult it so
// one -profile flag sizes both the registry and the estimators.
func (p Profile) EstimatorWindow(def int) int {
	if p == ProfileCompact && def > compactWindowCap {
		return compactWindowCap
	}
	return def
}

// entry is one monitored process: its detector plus the small mutex that
// serialises access to it. Detectors are not required to be safe for
// concurrent use (see core.Detector), so every Report/Suspicion goes
// through e.mu — but only heartbeats and queries for the *same* process
// ever meet on it.
//
// Entries are slab slots, not individually allocated objects: they must
// never be copied (the mutex) and are reused across register/deregister
// cycles. gen distinguishes bindings: odd while a process is bound to
// the slot, even while free, bumped under e.mu on every bind and unbind.
// A caller that resolved (entry, gen) under a shard lock passes the gen
// back into report, which verifies it under e.mu and refuses the
// operation if the slot was rebound in between.
//
// # The eval cell
//
// Read paths never take e.mu in steady state. Each write that changes
// what a reader could observe — bind, unbind, an accepted heartbeat, a
// retune, a state restore — republishes the entry's evaluation state
// into a seqlock cell of plain atomics: the process identity (meta),
// the frozen core.EvalSnapshot parameters and the last-arrival stamp.
// The writer (always under e.mu, so writers never interleave) bumps
// evalSeq odd, stores the fields, bumps it even; a reader snapshots the
// fields between two equal even reads of evalSeq and otherwise retries.
// Every field is individually atomic, so the protocol is race-detector
// clean, and a reader can never pair one binding's id with another's
// parameters. Full-registry walks evaluate levels from the captured
// snapshot alone — zero locks, zero detector calls.
type entry struct {
	mu sync.Mutex
	// lastSeq is the highest heartbeat sequence number seen (0 until a
	// numbered heartbeat arrives), guarded by mu like the detector.
	lastSeq uint64
	gen     atomic.Uint64
	det     core.Detector
	// snap is det asserted to core.EvalSnapshotter once at bind (nil when
	// the detector does not publish snapshots); guarded by mu.
	snap core.EvalSnapshotter
	// lastArrival is the arrival time of the newest heartbeat (the bind
	// time until one arrives), guarded by mu like the detector; its
	// UnixNano is mirrored into evalLast for lock-free readers.
	lastArrival time.Time

	// meta is the binding's identity (id and group tag), nil while the
	// slot is free. It is stored inside the seqlock window at bind and
	// unbind, so one consistent read of the cell pairs the right identity
	// with the right parameters even across a rebind.
	meta atomic.Pointer[entryMeta]

	// The seqlock cell proper. evalKind/evalRef/evalP1/evalP2/evalEps
	// mirror core.EvalSnapshot (floats as Float64bits); evalLast mirrors
	// lastArrival.UnixNano(); evalAux boxes the snapshot's EvalAux hook,
	// re-boxed only when its identity changes (for the in-tree detectors
	// that is once per binding, so steady-state publication allocates
	// nothing).
	evalSeq  atomic.Uint32
	evalKind atomic.Uint32
	evalRef  atomic.Int64
	evalLast atomic.Int64
	evalP1   atomic.Uint64
	evalP2   atomic.Uint64
	evalEps  atomic.Uint64
	evalAux  atomic.Pointer[evalAuxBox]
}

// entryMeta is a binding's immutable identity, shared with lock-free
// readers by pointer.
type entryMeta struct {
	id    string
	group string
}

// evalAuxBox wraps the snapshot's EvalAux hook so the two-word interface
// value can be published through a single atomic pointer.
type evalAuxBox struct{ aux core.EvalAux }

// publishEval recomputes the detector's eval snapshot and writes it —
// with the last-arrival mirror and, when setMeta is true, a new identity
// — into the seqlock cell. Caller holds e.mu; every mutation of
// detector-observable state must call this before unlocking, so readers
// are never more than one heartbeat behind the locked truth.
func (e *entry) publishEval(meta *entryMeta, setMeta bool) {
	var snap core.EvalSnapshot
	if e.snap != nil {
		snap = e.snap.EvalSnapshot()
	}
	e.evalSeq.Add(1) // even → odd: readers retry
	if setMeta {
		e.meta.Store(meta)
	}
	e.evalKind.Store(uint32(snap.Kind))
	e.evalRef.Store(snap.Ref)
	e.evalLast.Store(e.lastArrival.UnixNano())
	e.evalP1.Store(math.Float64bits(snap.P1))
	e.evalP2.Store(math.Float64bits(snap.P2))
	e.evalEps.Store(math.Float64bits(float64(snap.Eps)))
	if snap.Aux != nil {
		if box := e.evalAux.Load(); box == nil || box.aux != snap.Aux {
			e.evalAux.Store(&evalAuxBox{aux: snap.Aux})
		}
	} else if e.evalAux.Load() != nil {
		e.evalAux.Store(nil)
	}
	e.evalSeq.Add(1) // odd → even: cell stable
}

// evalSpinLimit bounds the seqlock retry loop; past it the reader falls
// back to a locked read rather than spinning against a write storm.
const evalSpinLimit = 64

// loadEval performs one lock-free read of the entry's eval cell. ok is
// false when the slot is free; otherwise meta, snap and last (the
// last-arrival UnixNano) form one consistent published state. A
// snapshot of kind core.EvalNone means the bound detector does not
// publish snapshots and the caller must evaluate under the entry lock.
func (e *entry) loadEval() (meta *entryMeta, snap core.EvalSnapshot, last int64, ok bool) {
	for spin := 0; spin < evalSpinLimit; spin++ {
		s1 := e.evalSeq.Load()
		if s1&1 != 0 {
			continue // publication in flight
		}
		meta = e.meta.Load()
		if meta == nil {
			if e.evalSeq.Load() == s1 {
				return nil, core.EvalSnapshot{}, 0, false // stably free
			}
			continue // observed mid-(un)bind; retry
		}
		snap.Kind = core.EvalKind(e.evalKind.Load())
		snap.Ref = e.evalRef.Load()
		last = e.evalLast.Load()
		snap.P1 = math.Float64frombits(e.evalP1.Load())
		snap.P2 = math.Float64frombits(e.evalP2.Load())
		snap.Eps = core.Level(math.Float64frombits(e.evalEps.Load()))
		if box := e.evalAux.Load(); box != nil {
			snap.Aux = box.aux
		} else {
			snap.Aux = nil
		}
		if e.evalSeq.Load() == s1 {
			return meta, snap, last, true
		}
	}
	// Writer storm on this entry: read the cell under its lock instead.
	e.mu.Lock()
	meta = e.meta.Load()
	if meta == nil {
		e.mu.Unlock()
		return nil, core.EvalSnapshot{}, 0, false
	}
	if e.snap != nil {
		snap = e.snap.EvalSnapshot()
	} else {
		snap = core.EvalSnapshot{}
	}
	last = e.lastArrival.UnixNano()
	e.mu.Unlock()
	return meta, snap, last, true
}

// lockedLevel evaluates the live detector under e.mu — the fallback for
// detectors that do not publish snapshots. ok is false when the slot no
// longer holds the binding identified by meta.
func (e *entry) lockedLevel(meta *entryMeta, now time.Time) (core.Level, bool) {
	e.mu.Lock()
	if e.meta.Load() != meta {
		e.mu.Unlock()
		return 0, false
	}
	l := e.det.Suspicion(now)
	e.mu.Unlock()
	return l, true
}

// report feeds one heartbeat to the detector and reports whether it was
// stale — numbered at or below a sequence already seen (duplicate or
// out-of-order delivery). Stale heartbeats still reach the detector:
// they are real arrivals and the sampling-window estimators want them;
// staleness is a telemetry signal, not a filter. ok is false when the
// slot's generation no longer matches gen (the process was deregistered
// after the caller resolved the handle); the heartbeat is then dropped.
func (e *entry) report(gen uint64, hb core.Heartbeat) (stale, ok bool) {
	e.mu.Lock()
	if e.gen.Load() != gen {
		e.mu.Unlock()
		return false, false
	}
	if hb.Seq != 0 {
		if hb.Seq <= e.lastSeq {
			stale = true
		} else {
			e.lastSeq = hb.Seq
		}
	}
	e.det.Report(hb)
	// Liveness evidence only accrues forward: a reordered or duplicate
	// beat must not regress the last-arrival stamp digests are built from.
	if hb.Arrived.After(e.lastArrival) {
		e.lastArrival = hb.Arrived
	}
	e.publishEval(nil, false)
	e.mu.Unlock()
	return stale, true
}

const (
	// slabChunkBits sizes slab chunks at 512 entries (~20 KiB): large
	// enough that a million-process shard is a few dozen GC objects,
	// small enough that a mostly-empty shard wastes little.
	slabChunkBits = 9
	slabChunkSize = 1 << slabChunkBits
	slabChunkMask = slabChunkSize - 1
)

// slab is a chunked entry arena. Chunks are never moved or freed once
// allocated (entries contain a mutex and are referenced by raw pointer
// while shard locks are *not* held), so &chunks[c][i] is stable for the
// monitor's lifetime. Freed slots go on the free list and are handed
// back out before the arena grows — a register/deregister storm cycles
// through the same slots instead of growing the heap.
type slab struct {
	chunks [][]entry
	free   []uint32
	next   uint32
}

func (s *slab) at(idx uint32) *entry {
	return &s.chunks[idx>>slabChunkBits][idx&slabChunkMask]
}

// alloc returns a free slot, reusing the free list before extending the
// arena by one chunk. Caller holds the shard write lock.
func (s *slab) alloc() (uint32, *entry) {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx, s.at(idx)
	}
	if int(s.next)>>slabChunkBits == len(s.chunks) {
		s.chunks = append(s.chunks, make([]entry, slabChunkSize))
	}
	idx := s.next
	s.next++
	return idx, s.at(idx)
}

// shard is one slice of the registry with its own lock: an id → slot
// index plus the entry slab the indices address.
type shard struct {
	mu    sync.RWMutex
	procs map[string]uint32
	slab  slab
}

// get resolves id to its entry and current generation. Caller holds
// sh.mu (read or write); the returned gen is the binding observed under
// that lock, and stays verifiable after the lock is released.
func (sh *shard) get(id string) (*entry, uint64) {
	idx, ok := sh.procs[id]
	if !ok {
		return nil, 0
	}
	e := sh.slab.at(idx)
	return e, e.gen.Load()
}

// bind allocates a slot for id and installs det, tagged with the
// process's group and stamped with its start time (so lastArrival is
// never zero for a bound slot). Caller holds the shard write lock; id
// must not be present.
func (sh *shard) bind(id string, det core.Detector, group string, start time.Time) (*entry, uint64) {
	idx, e := sh.slab.alloc()
	e.mu.Lock()
	e.det = det
	e.snap, _ = det.(core.EvalSnapshotter)
	e.lastSeq = 0
	e.lastArrival = start
	e.gen.Add(1) // even → odd: bound
	gen := e.gen.Load()
	// Publish the identity and the detector's initial snapshot in one
	// seqlock window: lock-free walks see the process from this instant,
	// never with a predecessor's parameters.
	e.publishEval(&entryMeta{id: id, group: group}, true)
	e.mu.Unlock()
	sh.procs[id] = idx
	return e, gen
}

// unbind removes id, invalidates outstanding handles to its slot and
// returns the slot to the free list. The detector reference is cleared
// immediately — deregistration releases the per-process state to the
// collector right away rather than when the slot is next reused, so
// churn cannot pin memory. Caller holds the shard write lock.
func (sh *shard) unbind(id string) bool {
	idx, ok := sh.procs[id]
	if !ok {
		return false
	}
	delete(sh.procs, id)
	e := sh.slab.at(idx)
	e.mu.Lock()
	e.gen.Add(1) // odd → even: free
	e.det = nil
	e.snap = nil
	e.lastSeq = 0
	e.lastArrival = time.Time{}
	// Clear the eval cell inside one seqlock window; concurrent walks
	// observe the slot as stably free and skip it.
	e.publishEval(nil, true)
	e.mu.Unlock()
	sh.slab.free = append(sh.slab.free, idx)
	return true
}

// Monitor is the per-host monitoring component: it owns one accrual
// failure detector per monitored process. Monitor is safe for concurrent
// use; see the package comment for the sharded locking design.
type Monitor struct {
	clk          clock.Clock
	factory      Factory
	autoRegister bool
	profile      Profile

	// ids is the optional shared intern table: registration canonicalises
	// ids through it so the registry key shares storage with the
	// transport decode path's strings (one heap string per id, however
	// many layers touch it). Nil means plain strings; intern.Table is
	// nil-receiver-safe so the call sites carry no branch.
	ids *intern.Table

	shardMask uint32
	shardReq  int // WithShardCount request; 0 = profile default
	shards    []shard

	// groupFn, when non-nil, tags each process with a group name at
	// registration (WithGroupFn). Groups drive the per-group accrual
	// rollups federation digests carry.
	groupFn func(id string) string

	// tel is the optional telemetry hub. The hot paths reuse the shard
	// hash to pick a counter stripe, so instrumentation costs one
	// uncontended atomic add and zero allocations per operation.
	tel *telemetry.Hub

	// onShardLock, when non-nil, observes every shard-lock acquisition
	// HeartbeatBatch performs (shard index, write?). Tests use it to
	// verify the once-per-shard-per-batch contract; production monitors
	// leave it nil.
	onShardLock func(shard uint32, write bool)

	// walk is the persistent worker pool behind EachLevelParallel; coal
	// is the single-flight coalescer behind the Shared walk variants.
	// Both live in walk.go.
	walk walkPool
	coal walkCoalescer
}

// noteWalkRun counts one full-registry evaluation pass on the telemetry
// hub (accrual_walk_runs_total).
func (m *Monitor) noteWalkRun() {
	if m.tel != nil {
		m.tel.Walks.Run()
	}
}

// MonitorOption configures a Monitor.
type MonitorOption func(*Monitor)

// WithoutAutoRegister makes Heartbeat reject heartbeats from unregistered
// processes instead of registering them on first contact.
func WithoutAutoRegister() MonitorOption {
	return func(m *Monitor) { m.autoRegister = false }
}

// WithShardCount fixes the registry shard count (rounded up to the next
// power of two, clamped above at 65536). More shards reduce registration
// contention for very large memberships; fewer shrink the idle footprint
// for tiny ones. The default of 64 is right for almost everyone; counts
// below one fall back to that default rather than degenerating to a
// single shard.
func WithShardCount(n int) MonitorOption {
	return func(m *Monitor) { m.shardReq = n }
}

// WithProfile selects the registry profile. ProfileCompact raises the
// default shard count to 512 (an explicit WithShardCount still wins)
// and is consulted by detector factories via Profile.EstimatorWindow to
// cap per-process estimator state; see docs/TUNING.md "Memory at 1M
// processes".
func WithProfile(p Profile) MonitorOption {
	return func(m *Monitor) { m.profile = p }
}

// WithInterner canonicalises registry keys through tab — normally the
// same shared table the UDP listener's decode path interns ids into, so
// a monitored process costs one id string for the whole daemon. A nil
// table is valid and means no interning.
func WithInterner(tab *intern.Table) MonitorOption {
	return func(m *Monitor) { m.ids = tab }
}

// WithGroupFn tags every process registered (explicitly or by
// auto-registration) with fn(id) — the group name the federation plane's
// per-group impact rollups aggregate by. fn is called under the shard
// write lock, so it must be fast and must not touch the monitor; a
// constant function (one group per daemon) is the common case. A nil fn
// leaves every process in the default (empty) group.
func WithGroupFn(fn func(id string) string) MonitorOption {
	return func(m *Monitor) { m.groupFn = fn }
}

// WithTelemetry wires a telemetry hub into the monitor: heartbeats,
// stale arrivals, queries and registration churn are counted on the
// hub's striped counters, and deregistrations are forwarded to its QoS
// layer so crashed processes yield detection-time samples.
func WithTelemetry(hub *telemetry.Hub) MonitorOption {
	return func(m *Monitor) { m.tel = hub }
}

// NewMonitor returns a monitor that timestamps registrations with clk and
// creates detectors with factory. Both are required.
func NewMonitor(clk clock.Clock, factory Factory, opts ...MonitorOption) *Monitor {
	m := &Monitor{
		clk:          clk,
		factory:      factory,
		autoRegister: true,
	}
	for _, opt := range opts {
		opt(m)
	}
	// Shards are sized after the options ran so WithProfile and
	// WithShardCount compose in either order: an explicit count wins,
	// otherwise the profile picks its default.
	n := m.shardReq
	if n < 1 {
		n = defaultShardCount
		if m.profile == ProfileCompact {
			n = compactShardCount
		}
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	m.shards = make([]shard, p)
	m.shardMask = uint32(p - 1)
	for i := range m.shards {
		m.shards[i].procs = make(map[string]uint32)
	}
	return m
}

// Profile returns the registry profile the monitor was built with.
func (m *Monitor) Profile() Profile { return m.profile }

// fnv1a is the 32-bit FNV-1a hash, inlined so shard selection costs a few
// nanoseconds and zero allocations.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// shardAt maps a precomputed id hash to its shard; hot paths hash once
// and reuse the value for both shard selection and counter striping.
func (m *Monitor) shardAt(h uint32) *shard {
	return &m.shards[h&m.shardMask]
}

func (m *Monitor) shardFor(id string) *shard {
	return m.shardAt(fnv1a(id))
}

// groupOf resolves a process id's group tag ("" without WithGroupFn).
func (m *Monitor) groupOf(id string) string {
	if m.groupFn == nil {
		return ""
	}
	return m.groupFn(id)
}

// lookup returns the live entry for id with its binding generation, or
// (nil, 0).
func (m *Monitor) lookup(id string) (*entry, uint64) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	e, gen := sh.get(id)
	sh.mu.RUnlock()
	return e, gen
}

// Register adds a monitored process. It returns ErrAlreadyRegistered if
// the id is already present.
func (m *Monitor) Register(id string) error {
	id = m.ids.InternString(id)
	h := fnv1a(id)
	sh := m.shardAt(h)
	sh.mu.Lock()
	if _, ok := sh.procs[id]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrAlreadyRegistered, id)
	}
	now := m.clk.Now()
	sh.bind(id, m.factory(id, now), m.groupOf(id), now)
	sh.mu.Unlock()
	if m.tel != nil {
		m.tel.Counters.Registered(h)
	}
	return nil
}

// Deregister removes a monitored process and reports whether it was
// present. The slot and its detector are released immediately: the
// detector reference is dropped under the entry lock (so the estimator
// state is collectable at once) and the slab slot returns to the
// shard's free list for the next registration — a register/deregister
// storm cycles slots instead of growing the arena.
func (m *Monitor) Deregister(id string) bool {
	h := fnv1a(id)
	sh := m.shardAt(h)
	sh.mu.Lock()
	ok := sh.unbind(id)
	sh.mu.Unlock()
	if ok {
		// Telemetry strictly after the shard unlock: the QoS sampler
		// holds its own lock while it read-locks shards (Sample →
		// EachLevel), so notifying under sh.mu would invert that order.
		if m.tel != nil {
			m.tel.Counters.Deregistered(h)
			m.tel.ProcessDeregistered(id, m.clk.Now())
		}
	}
	return ok
}

// Known reports whether id is currently registered, without evaluating
// its detector — the cheap existence probe App.Status uses so that one
// application query costs exactly one detector evaluation.
func (m *Monitor) Known(id string) bool {
	e, _ := m.lookup(id)
	return e != nil
}

// Len returns the number of monitored processes.
func (m *Monitor) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.procs)
		sh.mu.RUnlock()
	}
	return n
}

// Processes returns the sorted ids of all monitored processes.
func (m *Monitor) Processes() []string {
	ids := m.appendIDs(nil)
	sort.Strings(ids)
	return ids
}

// appendIDs appends every monitored id to buf (unsorted, shard by shard)
// and returns the extended slice. Callers that poll repeatedly pass their
// previous buffer back to avoid re-allocating.
func (m *Monitor) appendIDs(buf []string) []string {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id := range sh.procs {
			buf = append(buf, id)
		}
		sh.mu.RUnlock()
	}
	return buf
}

// ShardCount returns the number of registry shards. Together with
// AppendShardIDs it is the basis of cursor-style incremental reads: a
// consumer that cannot afford one O(n) pass (the /v1/metrics scrape at
// very large memberships) walks shards [cursor, cursor+k) per page.
func (m *Monitor) ShardCount() int { return len(m.shards) }

// AppendShardIDs appends the ids currently registered in shard s
// (0 <= s < ShardCount) to dst and returns the extended slice, unsorted.
// Out-of-range shards append nothing. Only shard s's read lock is
// taken, so paging through shards never pauses the rest of the
// registry; callers reuse dst across pages to avoid re-allocating.
func (m *Monitor) AppendShardIDs(s int, dst []string) []string {
	if s < 0 || s >= len(m.shards) {
		return dst
	}
	sh := &m.shards[s]
	sh.mu.RLock()
	for id := range sh.procs {
		dst = append(dst, id)
	}
	sh.mu.RUnlock()
	return dst
}

// Heartbeat routes a heartbeat to the detector of its sender,
// registering the sender first when auto-registration is on. A process
// auto-registered by a heartbeat is stamped with the heartbeat's arrival
// time when it carries one, so replayed or simulated streams do not skew
// the first inter-arrival sample with the ingestion-time clock reading.
func (m *Monitor) Heartbeat(hb core.Heartbeat) error {
	h := fnv1a(hb.From)
	sh := m.shardAt(h)
	sh.mu.RLock()
	e, gen := sh.get(hb.From)
	sh.mu.RUnlock()
	if e == nil {
		if !m.autoRegister {
			return fmt.Errorf("%w: %q", ErrUnknownProcess, hb.From)
		}
		start := hb.Arrived
		if start.IsZero() {
			start = m.clk.Now()
		}
		id := m.ids.InternString(hb.From)
		sh.mu.Lock()
		if e, gen = sh.get(id); e == nil {
			e, gen = sh.bind(id, m.factory(id, start), m.groupOf(id), start)
			if m.tel != nil {
				m.tel.Counters.Registered(h)
			}
		}
		sh.mu.Unlock()
	}
	// A generation mismatch means the process was deregistered between
	// the lookup and the report; the beat is for a process that no
	// longer exists, so it is dropped without error (the same observable
	// outcome the pre-slab registry gave a racing orphaned entry).
	stale, ok := e.report(gen, hb)
	if ok && m.tel != nil {
		m.tel.Counters.Heartbeat(h, stale)
	}
	return nil
}

// Suspicion returns the current suspicion level of one process.
func (m *Monitor) Suspicion(id string) (core.Level, error) {
	h := fnv1a(id)
	sh := m.shardAt(h)
	sh.mu.RLock()
	e, _ := sh.get(id)
	sh.mu.RUnlock()
	if e == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProcess, id)
	}
	if m.tel != nil {
		m.tel.Counters.Query(h)
	}
	lvl, ok := e.snapLevel(id, m.clk.Now())
	if !ok {
		// Deregistered between lookup and evaluation.
		return 0, fmt.Errorf("%w: %q", ErrUnknownProcess, id)
	}
	return lvl, nil
}

// snapLevel evaluates the level of the process bound to e — lock-free
// from the published snapshot when the detector provides one, under the
// entry lock otherwise. ok is false when the slot no longer holds id.
func (e *entry) snapLevel(id string, now time.Time) (core.Level, bool) {
	meta, snap, _, ok := e.loadEval()
	if !ok || meta.id != id {
		return 0, false
	}
	if snap.Kind != core.EvalNone {
		return snap.Level(now), true
	}
	return e.lockedLevel(meta, now)
}

// walkSpan captures the shard's slab extent for lock-free iteration:
// the chunk table and the high-water slot count. The shard lock is held
// only for the two-field copy — chunks are append-only and never moved,
// so the captured prefix stays valid for the monitor's lifetime; slots
// bound after the capture are simply not visited this pass (the same
// membership semantics the locked walk had).
func (sh *shard) walkSpan() ([][]entry, uint32) {
	sh.mu.RLock()
	chunks, n := sh.slab.chunks, sh.slab.next
	sh.mu.RUnlock()
	return chunks, n
}

// walkShardLevels evaluates every bound slot of one shard at now,
// straight off the slab arrays: no shard lock, no entry locks, no map
// iteration — each slot is one seqlock read plus a pure snapshot
// evaluation. Detectors that do not publish snapshots are evaluated
// under their entry lock, preserving the old semantics.
func walkShardLevels(sh *shard, now time.Time, fn func(id string, lvl core.Level)) {
	chunks, n := sh.walkSpan()
	remaining := int(n)
	for _, chunk := range chunks {
		cn := slabChunkSize
		if remaining < cn {
			cn = remaining
		}
		for j := 0; j < cn; j++ {
			e := &chunk[j]
			meta, snap, _, ok := e.loadEval()
			if !ok {
				continue // free slot
			}
			var lvl core.Level
			if snap.Kind != core.EvalNone {
				lvl = snap.Level(now)
			} else if lvl, ok = e.lockedLevel(meta, now); !ok {
				continue // unbound mid-walk
			}
			fn(meta.id, lvl)
		}
		remaining -= cn
		if remaining <= 0 {
			break
		}
	}
}

// walkShardInfos is walkShardLevels plus the identity and last-arrival
// surface digests are built from; one seqlock read yields a consistent
// (group, level, lastArrival) triple per process.
func walkShardInfos(sh *shard, now time.Time, fn func(info ProcessInfo)) {
	chunks, n := sh.walkSpan()
	remaining := int(n)
	for _, chunk := range chunks {
		cn := slabChunkSize
		if remaining < cn {
			cn = remaining
		}
		for j := 0; j < cn; j++ {
			e := &chunk[j]
			meta, snap, last, ok := e.loadEval()
			if !ok {
				continue
			}
			var lvl core.Level
			if snap.Kind != core.EvalNone {
				lvl = snap.Level(now)
			} else if lvl, ok = e.lockedLevel(meta, now); !ok {
				continue
			}
			fn(ProcessInfo{ID: meta.id, Group: meta.group, Level: lvl, LastArrival: time.Unix(0, last)})
		}
		remaining -= cn
		if remaining <= 0 {
			break
		}
	}
}

// EachLevel calls fn with every monitored process and its suspicion level
// at one clock reading. It iterates the slab arrays directly and
// evaluates published snapshots, so the walk holds no locks and calls no
// detectors; see the entry comment for the seqlock protocol.
func (m *Monitor) EachLevel(fn func(id string, lvl core.Level)) {
	now := m.clk.Now()
	for i := range m.shards {
		walkShardLevels(&m.shards[i], now, fn)
	}
	m.noteWalkRun()
}

// ProcessInfo is one monitored process's digest-relevant state at one
// clock reading: its group tag, its suspicion level and the arrival time
// of its newest heartbeat (the registration time until one arrives).
type ProcessInfo struct {
	ID          string
	Group       string
	Level       core.Level
	LastArrival time.Time
}

// EachInfo calls fn with every monitored process's ProcessInfo at one
// clock reading — the walk federation digest construction runs on. Like
// EachLevel it evaluates published snapshots straight off the slab
// arrays, holds no locks while fn runs, and allocates nothing in steady
// state, so building a digest over a million processes never takes a
// global pause. Identity and group ride in the seqlock cell with the
// parameters, so a slot rebound mid-walk is skipped or attributed to
// exactly one binding, never mixed.
func (m *Monitor) EachInfo(fn func(info ProcessInfo)) {
	now := m.clk.Now()
	for i := range m.shards {
		walkShardInfos(&m.shards[i], now, fn)
	}
	m.noteWalkRun()
}

// Snapshot returns the suspicion level of every monitored process at one
// clock reading.
func (m *Monitor) Snapshot() map[string]core.Level {
	out := make(map[string]core.Level, m.Len())
	m.EachLevel(func(id string, lvl core.Level) { out[id] = lvl })
	return out
}

// Now exposes the monitor's clock reading, so that applications and
// interpreters share its notion of time.
func (m *Monitor) Now() time.Time { return m.clk.Now() }

// levelFunc returns a LevelFunc reading one process's level. The handle
// caches the per-process entry so steady-state queries skip the registry
// lookup entirely, re-resolving only after a deregistration (which may
// find a re-registered successor, or nothing — then it reports zero).
// Each query is one lock-free snapshot evaluation.
func (m *Monitor) levelFunc(id string) transform.LevelFunc {
	h := fnv1a(id)
	var cached *entry
	return func(now time.Time) core.Level {
		if cached != nil {
			if lvl, ok := cached.snapLevel(id, now); ok {
				if m.tel != nil {
					m.tel.Counters.Query(h)
				}
				return lvl
			}
			// Slot rebound since the handle was cached — the process was
			// deregistered (and possibly re-registered); re-resolve.
		}
		e, _ := m.lookup(id)
		cached = e
		if e == nil {
			return 0
		}
		lvl, ok := e.snapLevel(id, now)
		if !ok {
			cached = nil
			return 0
		}
		if m.tel != nil {
			m.tel.Counters.Query(h)
		}
		return lvl
	}
}

// Policy builds one application-side binary interpreter over a suspicion
// level source. The three standard policies correspond to the paper's
// interpreters: the single-threshold D_T (Equation 2), the two-threshold
// D'_T (Algorithm 3) and the self-tuning Algorithm 1.
type Policy func(src transform.LevelFunc) core.BinaryDetector

// ConstantPolicy interprets levels with a fixed threshold (suspect iff
// level > threshold).
func ConstantPolicy(threshold core.Level) Policy {
	return func(src transform.LevelFunc) core.BinaryDetector {
		return transform.NewConstantThreshold(src, threshold)
	}
}

// HysteresisPolicy interprets levels with the two-threshold detector
// D'_T: suspect above high, trust again at or below low.
func HysteresisPolicy(high, low core.Level) Policy {
	return func(src transform.LevelFunc) core.BinaryDetector {
		return transform.NewHysteresis(src, high, low)
	}
}

// AdaptivePolicy interprets levels with Algorithm 1, the self-tuning
// ◇P transformation that needs no threshold parameter at all.
func AdaptivePolicy() Policy {
	return func(src transform.LevelFunc) core.BinaryDetector {
		return transform.NewAccrualToBinary(src)
	}
}

// TransitionHandler observes the S- and T-transitions of one application
// view. status is the new status after the transition.
type TransitionHandler func(proc string, tr core.Transition, status core.Status)

// App is one application's interpretation module: a binary view of every
// monitored process, built from the shared monitor's suspicion levels via
// the application's own policy. App is safe for concurrent use.
type App struct {
	name    string
	monitor *Monitor
	policy  Policy
	onTrans TransitionHandler

	mu      sync.Mutex
	views   map[string]*appView
	pollIDs []string        // reused id scratch across Poll calls
	current map[string]bool // reused membership scratch across Poll calls
}

type appView struct {
	bin  core.BinaryDetector
	last core.Status
}

// AppOption configures an App.
type AppOption func(*App)

// WithTransitionHandler registers a callback invoked (synchronously,
// from the polling goroutine) on every transition this app observes.
func WithTransitionHandler(h TransitionHandler) AppOption {
	return func(a *App) { a.onTrans = h }
}

// NewApp returns a named interpretation module over the monitor.
func (m *Monitor) NewApp(name string, policy Policy, opts ...AppOption) *App {
	a := &App{
		name:    name,
		monitor: m,
		policy:  policy,
		views:   make(map[string]*appView),
		current: make(map[string]bool),
	}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

func (a *App) view(id string) *appView {
	v, ok := a.views[id]
	if !ok {
		v = &appView{bin: a.policy(a.monitor.levelFunc(id)), last: core.Trusted}
		a.views[id] = v
	}
	return v
}

// Status queries this application's binary view of one process. Each call
// is one query in the oracle model (stateful policies advance on it) and
// costs exactly one detector evaluation: existence is checked without
// reading the suspicion level.
func (a *App) Status(id string) (core.Status, error) {
	if !a.monitor.Known(id) {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProcess, id)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.monitor.Now()
	v := a.view(id)
	s := v.bin.Query(now)
	a.noteTransition(id, v, s, now)
	return s, nil
}

// Poll queries every monitored process and returns the set of currently
// suspected ids, sorted. Views of processes that have been deregistered
// from the monitor are pruned, so long-lived applications do not
// accumulate state for departed processes.
func (a *App) Poll() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pollIDs = a.monitor.appendIDs(a.pollIDs[:0])
	now := a.monitor.Now()
	clear(a.current)
	var suspects []string
	for _, id := range a.pollIDs {
		a.current[id] = true
		v := a.view(id)
		s := v.bin.Query(now)
		a.noteTransition(id, v, s, now)
		if s == core.Suspected {
			suspects = append(suspects, id)
		}
	}
	for id := range a.views {
		if !a.current[id] {
			delete(a.views, id)
		}
	}
	sort.Strings(suspects)
	return suspects
}

func (a *App) noteTransition(id string, v *appView, s core.Status, now time.Time) {
	if s == v.last {
		return
	}
	kind := core.STransition
	if s == core.Trusted {
		kind = core.TTransition
	}
	v.last = s
	if a.onTrans != nil {
		a.onTrans(id, core.Transition{At: now, Kind: kind}, s)
	}
}

// Ranked returns all monitored processes ordered from least to most
// suspected (ties broken by id) — the worker-ranking usage pattern of the
// paper's Bag-of-Tasks example (§1.3).
func (m *Monitor) Ranked() []RankedProcess {
	return m.RankedAppend(nil)
}

// RankedAppend appends every monitored process to dst ordered from
// least to most suspected (ties broken by id) and returns the extended
// slice. Periodic consumers (the slowness oracle, rank-driven
// schedulers) pass their previous buffer back as dst[:0] so a
// steady-state refresh allocates nothing.
func (m *Monitor) RankedAppend(dst []RankedProcess) []RankedProcess {
	base := len(dst)
	m.EachLevel(func(id string, lvl core.Level) {
		dst = append(dst, RankedProcess{ID: id, Level: lvl})
	})
	slices.SortFunc(dst[base:], func(a, b RankedProcess) int {
		if a.Level != b.Level {
			if a.Level < b.Level {
				return -1
			}
			return 1
		}
		return strings.Compare(a.ID, b.ID)
	})
	return dst
}

// TopK appends the k most suspected processes to dst — most suspected
// first, equal levels broken by ascending id — and returns the extended
// slice. It walks the registry once via EachLevel keeping a bounded
// min-heap of k candidates, so the cost is O(n log k) time and O(k)
// space: a "worst offenders" view over a million processes never
// materialises the million-entry sorted slice Ranked would build.
// Callers reuse dst across refreshes like with RankedAppend.
func (m *Monitor) TopK(k int, dst []RankedProcess) []RankedProcess {
	if k <= 0 {
		return dst
	}
	base := len(dst)
	m.EachLevel(func(id string, lvl core.Level) {
		h := dst[base:]
		if len(h) < k {
			dst = append(dst, RankedProcess{ID: id, Level: lvl})
			siftUpRank(dst[base:], len(h))
			return
		}
		// h[0] is the last-placed candidate kept (least suspected);
		// replace it only when the newcomer outranks it.
		if cmpTopK(RankedProcess{ID: id, Level: lvl}, h[0]) >= 0 {
			return
		}
		h[0] = RankedProcess{ID: id, Level: lvl}
		siftDownRank(h)
	})
	slices.SortFunc(dst[base:], cmpTopK)
	return dst
}

// cmpTopK is the TopK output order: higher level first, equal levels by
// ascending id. A negative result means a outranks (precedes) b.
func cmpTopK(a, b RankedProcess) int {
	if a.Level != b.Level {
		if a.Level > b.Level {
			return -1
		}
		return 1
	}
	return strings.Compare(a.ID, b.ID)
}

// The bounded heap keeps the k highest-ranked candidates with the
// *lowest*-ranked of them at the root, so one comparison decides
// whether a newcomer displaces anything: a max-heap under cmpTopK.

// siftUpRank restores the heap property after appending at index i.
func siftUpRank(h []RankedProcess, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if cmpTopK(h[i], h[p]) <= 0 {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// siftDownRank restores the heap property after replacing the root.
func siftDownRank(h []RankedProcess) {
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		s := l
		if r := l + 1; r < len(h) && cmpTopK(h[r], h[l]) > 0 {
			s = r
		}
		if cmpTopK(h[i], h[s]) >= 0 {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// RankedProcess pairs a process id with its suspicion level.
type RankedProcess struct {
	ID    string
	Level core.Level
}
