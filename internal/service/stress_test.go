package service

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/simple"
)

// seqDetector records the heartbeat stream it observes. It is
// deliberately unsynchronised: the Monitor's per-entry lock must make it
// safe, and the race detector verifies that it does.
type seqDetector struct {
	lastSeq     uint64
	reports     int
	nonMonotone bool
}

func (d *seqDetector) Report(hb core.Heartbeat) {
	if hb.Seq <= d.lastSeq {
		d.nonMonotone = true
	}
	d.lastSeq = hb.Seq
	d.reports++
}

func (d *seqDetector) Suspicion(time.Time) core.Level {
	return core.Level(d.reports)
}

// TestMonitorStress hammers one Monitor from many goroutines mixing every
// operation — heartbeat ingest, suspicion queries, snapshots, ranked
// reads, register/deregister churn, recorder ticks and App polling — and
// then asserts that no registration was lost and that every writer's
// heartbeat stream was applied to its detector in order and in full.
// Run it under -race to exercise the sharded locking design.
func TestMonitorStress(t *testing.T) {
	const (
		writers      = 4
		procsPer     = 8
		beats        = 200
		churnRounds  = 150
		readerRounds = 300
	)
	clk := clock.NewManual(start)
	var factoryMu sync.Mutex
	dets := make(map[string]*seqDetector)
	m := NewMonitor(clk, func(id string, _ time.Time) core.Detector {
		d := &seqDetector{}
		factoryMu.Lock()
		dets[id] = d
		factoryMu.Unlock()
		return d
	}, WithShardCount(8)) // few shards: force cross-process shard sharing

	var wg sync.WaitGroup

	// Heartbeat writers: each owns a disjoint set of processes and sends
	// a strictly increasing sequence to each.
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := uint64(1); seq <= beats; seq++ {
				for p := 0; p < procsPer; p++ {
					id := fmt.Sprintf("w%d-p%d", w, p)
					if err := m.Heartbeat(hb(id, seq, clk.Now())); err != nil {
						t.Errorf("heartbeat %s: %v", id, err)
						return
					}
				}
			}
		}()
	}

	// Suspicion reader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < readerRounds; i++ {
			id := fmt.Sprintf("w%d-p%d", i%writers, i%procsPer)
			_, _ = m.Suspicion(id)
			_ = m.Known(id)
		}
	}()

	// Snapshot / Ranked / EachLevel reader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < readerRounds/3; i++ {
			_ = m.Snapshot()
			_ = m.Ranked()
			m.EachLevel(func(string, core.Level) {})
			_ = m.Len()
		}
	}()

	// Register/Deregister churn on ids nobody else touches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churnRounds; i++ {
			id := fmt.Sprintf("churn-%d", i%16)
			if err := m.Register(id); err != nil {
				t.Errorf("register %s: %v", id, err)
			}
			if !m.Deregister(id) {
				t.Errorf("deregister %s: lost registration", id)
			}
		}
	}()

	// State export/import streaming concurrently with the churn above:
	// ExportState iterates shard snapshots while Deregister frees
	// entries, and re-imports into the same monitor race the writers.
	// (The seqDetector is not snapshotable, so the exports are empty —
	// TestStateStreamingRacesDeregister covers the snapshotable path —
	// but the shard iteration itself runs against live churn.)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < readerRounds/5; i++ {
			st := m.ExportState()
			if _, err := m.ImportState(st); err != nil {
				t.Errorf("import: %v", err)
			}
		}
	}()

	// App polling plus per-process Status queries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		app := m.NewApp("stress", ConstantPolicy(1e9))
		for i := 0; i < readerRounds/3; i++ {
			_ = app.Poll()
			_, _ = app.Status(fmt.Sprintf("w%d-p%d", i%writers, i%procsPer))
		}
	}()

	// Recorder sampling concurrently with everything else.
	rec := NewRecorder(m, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < readerRounds/5; i++ {
			rec.Tick()
		}
	}()

	// Clock advancer, so levels actually move while everyone reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < readerRounds; i++ {
			clk.Advance(time.Millisecond)
		}
	}()

	wg.Wait()

	// No lost registrations: every writer-owned process is present…
	if got, want := m.Len(), writers*procsPer; got != want {
		t.Errorf("Len = %d, want %d (processes = %v)", got, want, m.Processes())
	}
	// …and every heartbeat stream arrived in order and in full.
	for w := 0; w < writers; w++ {
		for p := 0; p < procsPer; p++ {
			id := fmt.Sprintf("w%d-p%d", w, p)
			if !m.Known(id) {
				t.Errorf("%s: lost registration", id)
				continue
			}
			factoryMu.Lock()
			d := dets[id]
			factoryMu.Unlock()
			if d == nil {
				t.Errorf("%s: factory never ran", id)
				continue
			}
			if d.nonMonotone {
				t.Errorf("%s: non-monotone sequence application", id)
			}
			if d.lastSeq != beats || d.reports != beats {
				t.Errorf("%s: lastSeq=%d reports=%d, want %d", id, d.lastSeq, d.reports, beats)
			}
		}
	}
	// The churned ids are all gone.
	for i := 0; i < 16; i++ {
		if id := fmt.Sprintf("churn-%d", i); m.Known(id) {
			t.Errorf("%s: still registered after churn", id)
		}
	}
}

// TestStateStreamingRacesDeregister hammers ExportState and EachLevel
// against Deregister/Register churn over the *same* ids, with real
// snapshotable detectors, so shard iteration runs over entries being
// freed underneath it. Under -race this proves the streaming walks never
// touch a freed entry's detector unsynchronised, and the removed-entry
// check keeps deregistered processes out of exports.
func TestStateStreamingRacesDeregister(t *testing.T) {
	const (
		churners = 4
		idsPer   = 8
		rounds   = 200
	)
	clk := clock.NewManual(start)
	m := NewMonitor(clk, func(_ string, at time.Time) core.Detector {
		return simple.New(at)
	}, WithShardCount(2)) // few shards: every churn hits a streamed shard

	var churn, readers sync.WaitGroup
	stop := make(chan struct{})

	// Churners: register, heartbeat, deregister the same ids in a loop.
	for c := 0; c < churners; c++ {
		c := c
		churn.Add(1)
		go func() {
			defer churn.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < idsPer; i++ {
					id := fmt.Sprintf("c%d-%d", c, i)
					_ = m.Register(id)
					_ = m.Heartbeat(hb(id, uint64(r+1), clk.Now()))
					m.Deregister(id)
				}
			}
		}()
	}

	// Streaming readers: ExportState and EachLevel until churn finishes.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := m.ExportState()
				for _, ps := range st.Procs {
					if ps.State.Kind != simple.StateKind {
						t.Errorf("exported state of kind %q", ps.State.Kind)
						return
					}
				}
				m.EachLevel(func(string, core.Level) {})
			}
		}()
	}

	churn.Wait()
	close(stop)
	readers.Wait()

	if m.Len() != 0 {
		t.Errorf("Len = %d after full churn, want 0", m.Len())
	}
	if n := m.ExportState().Len(); n != 0 {
		t.Errorf("export after full churn has %d processes, want 0", n)
	}
}
