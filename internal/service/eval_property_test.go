package service

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"accrual/internal/bertier"
	"accrual/internal/chen"
	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/kappa"
	"accrual/internal/phi"
	"accrual/internal/simple"
)

// TestSnapshotLevelsMatchLive is the correctness property of the eval
// snapshot plane: for every detector kind, a level evaluated lock-free
// from the published snapshot must agree with the live detector's
// Suspicion() — at the same frozen instant — to within 1e-9. The
// workload is deliberately hostile to stale snapshots: jittered
// arrivals, 10% heartbeat loss (sequence numbers spent on beats that
// never arrive), deregister/re-register churn, and live retunes that
// resize estimation windows mid-stream. Every one of those paths must
// republish the snapshot atomically or the comparison drifts.
func TestSnapshotLevelsMatchLive(t *testing.T) {
	const interval = time.Second
	kinds := []struct {
		name    string
		factory Factory
	}{
		{"simple", func(_ string, st time.Time) core.Detector {
			return simple.New(st)
		}},
		{"chen", func(_ string, st time.Time) core.Detector {
			return chen.New(st, interval)
		}},
		{"phi-normal", func(_ string, st time.Time) core.Detector {
			return phi.New(st, phi.WithModel(phi.ModelNormal))
		}},
		{"phi-exponential", func(_ string, st time.Time) core.Detector {
			return phi.New(st, phi.WithModel(phi.ModelExponential))
		}},
		{"phi-erlang", func(_ string, st time.Time) core.Detector {
			return phi.New(st, phi.WithModel(phi.ModelErlang))
		}},
		{"kappa", func(_ string, st time.Time) core.Detector {
			return kappa.New(st, kappa.PLater{}, kappa.WithFixedInterval(interval))
		}},
		{"bertier", func(_ string, st time.Time) core.Detector {
			return bertier.New(st, interval)
		}},
	}
	for _, k := range kinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			clk := clock.NewManual(start)
			m := NewMonitor(clk, k.factory, WithShardCount(8))
			rng := rand.New(rand.NewSource(0xACC2))
			const procs = 32
			seq := make([]uint64, procs)
			for step := 1; step <= 600; step++ {
				now := clk.Advance(time.Duration(10+rng.Intn(80)) * time.Millisecond)
				p := rng.Intn(procs)
				seq[p]++
				if rng.Float64() < 0.10 {
					continue // lost beat: sequence number spent, arrival never happens
				}
				id := fmt.Sprintf("proc-%02d", p)
				if err := m.Heartbeat(core.Heartbeat{From: id, Seq: seq[p], Arrived: now}); err != nil {
					t.Fatalf("heartbeat %q: %v", id, err)
				}
				if rng.Float64() < 0.03 {
					victim := rng.Intn(procs)
					if m.Deregister(fmt.Sprintf("proc-%02d", victim)) {
						seq[victim] = 0 // re-registration starts a fresh detector
					}
				}
				if rng.Float64() < 0.02 {
					if _, _, err := m.Retune(core.Tuning{WindowSize: 16 + rng.Intn(48)}); err != nil {
						t.Fatalf("retune: %v", err)
					}
				}
				if step%75 == 0 {
					compareSnapshotToLive(t, m, clk.Now())
				}
			}
			// Jump far past the last arrival so the comparison also covers
			// deep-silence evaluation (large elapsed, saturated κ grid).
			clk.Advance(7 * interval)
			compareSnapshotToLive(t, m, clk.Now())
		})
	}
}

// compareSnapshotToLive walks the fleet through both snapshot read paths
// (sequential and parallel) and cross-checks every level against the
// live detector evaluated under the entry lock at the same instant. The
// manual clock is frozen for the duration, so any disagreement is a
// publication bug, not clock skew.
func compareSnapshotToLive(t *testing.T, m *Monitor, now time.Time) {
	t.Helper()
	seqLevels := make(map[string]core.Level)
	m.EachLevel(func(id string, lvl core.Level) { seqLevels[id] = lvl })
	var parMu sync.Mutex
	parLevels := make(map[string]core.Level, len(seqLevels))
	m.EachLevelParallel(func(id string, lvl core.Level) {
		parMu.Lock()
		parLevels[id] = lvl
		parMu.Unlock()
	})
	checked := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id := range sh.procs {
			e, _ := sh.get(id)
			e.mu.Lock()
			live := e.det.Suspicion(now)
			e.mu.Unlock()
			for path, got := range map[string]map[string]core.Level{"EachLevel": seqLevels, "EachLevelParallel": parLevels} {
				lvl, ok := got[id]
				if !ok {
					t.Fatalf("%s missed process %q", path, id)
				}
				if diff := math.Abs(float64(lvl) - float64(live)); diff > 1e-9 {
					t.Fatalf("%s level for %q = %v, live Suspicion = %v (diff %g)",
						path, id, lvl, live, diff)
				}
			}
			checked++
		}
		sh.mu.RUnlock()
	}
	if checked == 0 {
		t.Fatal("no registered processes to compare")
	}
	if len(seqLevels) != checked || len(parLevels) != checked {
		t.Fatalf("walk visited %d/%d (sequential) and %d/%d (parallel) processes",
			len(seqLevels), checked, len(parLevels), checked)
	}
}
