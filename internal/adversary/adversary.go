// Package adversary implements the adaptive adversary of Appendix A.5 of
// the paper, which proves that the Weak Accruement property (the level
// merely goes to infinity) is not strong enough to implement a ◇P binary
// failure detector: no algorithm can stabilise against a suspicion source
// that freezes whenever the algorithm suspects and grows whenever it
// trusts.
//
// The package also provides a compliant control source satisfying the full
// Accruement property (Property 1), against which the same transformation
// does stabilise — experiment E5 runs both side by side.
package adversary

import "accrual/internal/core"

// WeakSource is the A.5 adversary. Its replies depend on the consuming
// algorithm's current output, supplied by the caller before each query:
//
//   - if the algorithm suspects the monitored process, the level stays
//     constant (starving any trust run-length bound),
//   - if the algorithm trusts it, the level grows by ε (eventually
//     crossing any suspicion threshold).
//
// Every history it produces satisfies Upper Bound vacuously on finite
// prefixes and Weak Accruement whenever the level diverges, yet no
// algorithm reading it can make a permanent decision.
type WeakSource struct {
	eps   core.Level
	level core.Level
}

// NewWeakSource returns the adversary with resolution eps (ε defaults to
// 1 when non-positive).
func NewWeakSource(eps core.Level) *WeakSource {
	if eps <= 0 {
		eps = 1
	}
	return &WeakSource{eps: eps}
}

// Next returns the suspicion level for the next query, given the
// algorithm's current output (its status before this query).
func (s *WeakSource) Next(observed core.Status) core.Level {
	if observed != core.Suspected {
		s.level += s.eps
	}
	return s.level
}

// Level returns the adversary's current level.
func (s *WeakSource) Level() core.Level { return s.level }

// CompliantSource satisfies the genuine Accruement property (Property 1)
// regardless of the consuming algorithm's output: the level increases by
// ε at least once every Q queries and never decreases. It models a
// crashed process as seen through a well-formed ◇P_ac detector and serves
// as the control in experiment E5.
type CompliantSource struct {
	eps       core.Level
	q         int
	sinceIncr int
	level     core.Level
}

// NewCompliantSource returns a source that increases by eps every q-th
// query (q ≥ 1; values below 1 are raised to 1).
func NewCompliantSource(eps core.Level, q int) *CompliantSource {
	if eps <= 0 {
		eps = 1
	}
	if q < 1 {
		q = 1
	}
	return &CompliantSource{eps: eps, q: q}
}

// Next returns the suspicion level for the next query. The observed
// status is ignored: a compliant source cannot adapt to the algorithm.
func (s *CompliantSource) Next(core.Status) core.Level {
	s.sinceIncr++
	if s.sinceIncr >= s.q {
		s.level += s.eps
		s.sinceIncr = 0
	}
	return s.level
}

// Level returns the source's current level.
func (s *CompliantSource) Level() core.Level { return s.level }
