package adversary

import (
	"testing"
	"time"

	"accrual/internal/core"
	"accrual/internal/transform"
)

var start = time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC)

func TestWeakSourceFreezesWhileSuspected(t *testing.T) {
	s := NewWeakSource(1)
	l1 := s.Next(core.Suspected)
	l2 := s.Next(core.Suspected)
	if l1 != 0 || l2 != 0 {
		t.Errorf("levels while suspected: %v, %v (must stay constant)", l1, l2)
	}
}

func TestWeakSourceGrowsWhileTrusted(t *testing.T) {
	s := NewWeakSource(0.5)
	l1 := s.Next(core.Trusted)
	l2 := s.Next(core.Trusted)
	if l1 != 0.5 || l2 != 1 {
		t.Errorf("levels while trusted: %v, %v", l1, l2)
	}
	if s.Level() != 1 {
		t.Errorf("Level = %v", s.Level())
	}
}

func TestWeakSourceDefaultEps(t *testing.T) {
	s := NewWeakSource(0)
	if got := s.Next(core.Trusted); got != 1 {
		t.Errorf("default eps level = %v, want 1", got)
	}
}

func TestCompliantSourceIncreasesEveryQQueries(t *testing.T) {
	s := NewCompliantSource(1, 3)
	var levels []core.Level
	for i := 0; i < 9; i++ {
		levels = append(levels, s.Next(core.Trusted))
	}
	want := []core.Level{0, 0, 1, 1, 1, 2, 2, 2, 3}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
	if s.Level() != 3 {
		t.Errorf("Level = %v", s.Level())
	}
}

func TestCompliantSourceIgnoresObservedStatus(t *testing.T) {
	a := NewCompliantSource(1, 1)
	b := NewCompliantSource(1, 1)
	for i := 0; i < 10; i++ {
		la := a.Next(core.Suspected)
		lb := b.Next(core.Trusted)
		if la != lb {
			t.Fatal("compliant source must not adapt to the algorithm")
		}
	}
}

func TestCompliantSourceClamping(t *testing.T) {
	s := NewCompliantSource(-1, 0)
	if got := s.Next(core.Trusted); got != 1 {
		t.Errorf("clamped source level = %v, want 1 (eps=1, q=1)", got)
	}
}

// TestAdversaryDefeatsAlgorithm1 reproduces the A.5 argument empirically:
// against the weak-accruement adversary, Algorithm 1 keeps oscillating
// (transitions never stop), while against a compliant source it
// stabilises on "suspected".
func TestAdversaryDefeatsAlgorithm1(t *testing.T) {
	const n = 50000
	countTransitions := func(next func(core.Status) core.Level) (transitions, lastIdx int, final core.Status) {
		var alg *transform.AccrualToBinary
		src := func(time.Time) core.Level {
			return next(alg.Status())
		}
		alg = transform.NewAccrualToBinary(src)
		prev := core.Trusted
		for i := 0; i < n; i++ {
			s := alg.Query(start.Add(time.Duration(i) * time.Second))
			if s != prev {
				transitions++
				lastIdx = i
				prev = s
			}
			final = s
		}
		return transitions, lastIdx, final
	}

	weak := NewWeakSource(1)
	wTrans, wLast, _ := countTransitions(weak.Next)
	if wTrans < 100 {
		t.Errorf("adversary produced only %d transitions; algorithm should never stabilise", wTrans)
	}
	if n-wLast > n/10 {
		t.Errorf("last transition against adversary at %d/%d: looks stabilised", wLast, n)
	}

	compliant := NewCompliantSource(1, 3)
	cTrans, cLast, cFinal := countTransitions(compliant.Next)
	if cFinal != core.Suspected {
		t.Error("compliant (faulty) source must end suspected")
	}
	if n-cLast < n/2 {
		t.Errorf("algorithm did not stabilise against compliant source (last transition %d/%d)", cLast, n)
	}
	if cTrans >= wTrans {
		t.Errorf("compliant source caused %d transitions, adversary %d", cTrans, wTrans)
	}
}
