package kappa

import (
	"errors"
	"math"
	"testing"
	"time"

	"accrual/internal/core"
)

func TestSnapshotRestore(t *testing.T) {
	const interval = 100 * time.Millisecond
	live := New(start, PLater{})
	at := start
	for i := 1; i <= 250; i++ { // overflows the default window of 200
		at = at.Add(interval + time.Duration(i%4)*time.Millisecond)
		live.Report(core.Heartbeat{From: "p", Seq: uint64(i), Arrived: at})
	}

	restored := New(start.Add(time.Hour), PLater{})
	if err := restored.RestoreState(live.SnapshotState()); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if restored.SampleCount() != live.SampleCount() {
		t.Fatalf("SampleCount = %d, want %d", restored.SampleCount(), live.SampleCount())
	}
	for _, off := range []time.Duration{20 * time.Millisecond, 250 * time.Millisecond, 2 * time.Second, time.Minute} {
		now := at.Add(off)
		got, want := float64(restored.Suspicion(now)), float64(live.Suspicion(now))
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("Suspicion(+%v) = %v, want %v", off, got, want)
		}
	}

	// One arrival after a loss burst collapses both the same way.
	at = at.Add(10 * interval)
	hb := core.Heartbeat{From: "p", Seq: 251, Arrived: at}
	live.Report(hb)
	restored.Report(hb)
	now := at.Add(30 * time.Millisecond)
	if got, want := float64(restored.Suspicion(now)), float64(live.Suspicion(now)); math.Abs(got-want) > 1e-6 {
		t.Errorf("post-restore stream diverged: %v vs %v", got, want)
	}
}

func TestRestoreRejectsForeignState(t *testing.T) {
	d := New(start, Step{Timeout: time.Second})
	if err := d.RestoreState(core.NewState("chen", 1)); !errors.Is(err, core.ErrStateKind) {
		t.Errorf("foreign kind = %v, want ErrStateKind", err)
	}
}
