// Package kappa implements the κ accrual failure detection framework of
// Hayashibara, Défago and Katayama (JAIST IS-RR-2004-006), as described in
// §5.4 of the accrual failure detectors paper.
//
// Detectors that estimate the arrival time of the next heartbeat (Chen, φ)
// do not cope well with bursts of lost heartbeats: a single random
// distribution cannot model both delay variability and message loss. The κ
// detector instead makes every heartbeat that was not received contribute
// to the suspicion level. The contribution of a heartbeat grows gradually
// from 0 ("not yet expected") to 1 ("considered lost"), and the suspicion
// level is the sum of all contributions:
//
//	sl(t) = Σ_j c(t − due_j)
//
// over the heartbeats j still missing, where due_j is the instant
// heartbeat j started being awaited (the expected arrival time of its
// predecessor). At low suspicion levels only one heartbeat contributes
// significantly, so the level follows the fine-grained contribution
// function (aggressive range); at high levels the sum approaches a count
// of missed heartbeats and the shape of c is nearly irrelevant
// (conservative range). The change between the two regimes is gradual —
// exactly the behaviour §5.4 describes.
//
// Receiving a heartbeat with sequence number s supersedes every
// expectation with number ≤ s: a heartbeat is a proof of life at its send
// time, so older missing heartbeats no longer indicate a failure. This is
// what lets κ absorb loss bursts: one arrival after a burst collapses the
// accumulated contributions.
package kappa

import (
	"time"

	"accrual/internal/core"
	"accrual/internal/stats"
)

// Estimate carries the current inter-arrival estimate handed to
// contribution functions.
type Estimate struct {
	// Mean is the estimated (or configured) heartbeat inter-arrival time.
	Mean time.Duration
	// StdDev is the estimated inter-arrival standard deviation (zero when
	// operating on a fixed interval).
	StdDev time.Duration
}

// Contribution is the pluggable heart of the κ framework: the function
// describing how much one missing heartbeat contributes to the suspicion
// level as a function of the time elapsed since the heartbeat started
// being awaited. Implementations must be non-decreasing in delta, return
// values in [0, 1], return 0 for delta <= 0, and reach exactly 1 for all
// delta >= Saturation(est).
type Contribution interface {
	// Value returns the contribution c(delta) of a heartbeat that has
	// been awaited for delta.
	Value(delta time.Duration, est Estimate) float64
	// Saturation returns the delay after which the contribution is
	// pinned to 1 ("the heartbeat is lost"). The detector uses it to sum
	// arbitrarily many long-missed heartbeats in O(1) each.
	Saturation(est Estimate) time.Duration
}

// Step is the simplest contribution function mentioned in §5.4: a timeout
// per heartbeat. The contribution is 0 before the timeout and 1 after.
type Step struct {
	// Timeout is measured from the instant the heartbeat started being
	// awaited. It should exceed the heartbeat interval.
	Timeout time.Duration
}

var _ Contribution = Step{}

// Value implements Contribution.
func (s Step) Value(delta time.Duration, _ Estimate) float64 {
	if delta >= s.Timeout {
		return 1
	}
	return 0
}

// Saturation implements Contribution.
func (s Step) Saturation(Estimate) time.Duration { return s.Timeout }

// Ramp rises linearly from 0 at Start to 1 at End.
type Ramp struct {
	Start, End time.Duration
}

var _ Contribution = Ramp{}

// Value implements Contribution.
func (r Ramp) Value(delta time.Duration, _ Estimate) float64 {
	switch {
	case delta <= r.Start:
		return 0
	case delta >= r.End:
		return 1
	default:
		return float64(delta-r.Start) / float64(r.End-r.Start)
	}
}

// Saturation implements Contribution.
func (r Ramp) Saturation(Estimate) time.Duration { return r.End }

// PLater is the contribution function suggested by §5.4: reuse the
// arrival-distribution estimate of the φ detector. The contribution of a
// heartbeat awaited for delta is the probability that it should already
// have arrived, 1 − P_later(delta), under a normal inter-arrival model.
// The contribution is clamped to exactly 1 beyond Mu + Cutoff·Sigma.
type PLater struct {
	// MinStdDev floors the estimated standard deviation (default 1ms).
	MinStdDev time.Duration
	// Cutoff is the number of standard deviations past the mean at which
	// the contribution is treated as saturated (default 8).
	Cutoff float64
}

var _ Contribution = PLater{}

func (p PLater) sigma(est Estimate) time.Duration {
	sd := est.StdDev
	min := p.MinStdDev
	if min <= 0 {
		min = time.Millisecond
	}
	if sd < min {
		sd = min
	}
	return sd
}

func (p PLater) cutoff() float64 {
	if p.Cutoff <= 0 {
		return 8
	}
	return p.Cutoff
}

// Value implements Contribution.
func (p PLater) Value(delta time.Duration, est Estimate) float64 {
	if delta <= 0 {
		return 0
	}
	if delta >= p.Saturation(est) {
		return 1
	}
	dist := stats.Normal{Mu: est.Mean.Seconds(), Sigma: p.sigma(est).Seconds()}
	return dist.CDF(delta.Seconds())
}

// Saturation implements Contribution.
func (p PLater) Saturation(est Estimate) time.Duration {
	return est.Mean + time.Duration(p.cutoff()*float64(p.sigma(est)))
}

// DistContribution adapts a fixed probability distribution over waiting
// times into a contribution function: c(Δ) = CDF(Δ) = 1 − P_later(Δ),
// clamped to exactly 1 beyond the Saturate cutoff. Unlike PLater it does
// not track the live estimate — use it when the heartbeat process is
// known in advance (fixed schedulers, TDMA-style heartbeats).
type DistContribution struct {
	// Dist is the waiting-time distribution (seconds). Required.
	Dist stats.Dist
	// Saturate is the delay at which the contribution is pinned to 1.
	// Required (> 0); pick a high quantile of Dist.
	Saturate time.Duration
}

var _ Contribution = DistContribution{}

// Value implements Contribution.
func (d DistContribution) Value(delta time.Duration, _ Estimate) float64 {
	if delta <= 0 {
		return 0
	}
	if delta >= d.Saturate {
		return 1
	}
	return d.Dist.CDF(delta.Seconds())
}

// Saturation implements Contribution.
func (d DistContribution) Saturation(Estimate) time.Duration { return d.Saturate }

// Detector is a κ accrual failure detector for one monitored process.
// Levels are (fractional) counts of missed heartbeats. Create one with
// New.
type Detector struct {
	contrib Contribution
	window  *stats.Window // inter-arrival intervals, seconds
	fixed   time.Duration // fixed interval; zero means "estimate"
	start   time.Time
	last    time.Time
	hasLast bool
	snLast  uint64
	eps     core.Level

	// pendingFixed is a retuned fixed interval awaiting the next
	// accepted heartbeat (see Retune); negative means "none pending".
	pendingFixed time.Duration

	// Channel bookkeeping for the autotuner (core.TuneInfo).
	accepted uint64
	lost     uint64

	// aux is the shared core.EvalAux hook handed out with every eval
	// snapshot (see eval.go). Allocated once so publication stays
	// allocation-free.
	aux *snapEval
}

var _ core.Detector = (*Detector)(nil)

// Option configures a Detector.
type Option func(*Detector)

// WithWindowSize sets the number of inter-arrival samples kept for the
// interval estimate (default 200). Ignored when a fixed interval is set.
func WithWindowSize(n int) Option {
	return func(d *Detector) { d.window = stats.NewWindow(n) }
}

// WithFixedInterval disables interval estimation and uses the given
// nominal heartbeat interval.
func WithFixedInterval(interval time.Duration) Option {
	return func(d *Detector) { d.fixed = interval }
}

// WithResolution sets the level resolution ε.
func WithResolution(eps core.Level) Option {
	return func(d *Detector) { d.eps = eps }
}

// New returns a κ detector using the given contribution function, started
// at the given local time.
func New(start time.Time, contrib Contribution, opts ...Option) *Detector {
	d := &Detector{contrib: contrib, start: start, last: start, pendingFixed: -1}
	for _, opt := range opts {
		opt(d)
	}
	if d.window == nil {
		d.window = stats.NewWindow(200)
	}
	d.aux = &snapEval{contrib: d.contrib}
	return d
}

// Report records a heartbeat arrival. Stale and duplicate sequence
// numbers are ignored. Accepting sequence number s supersedes all
// expectations with numbers <= s.
func (d *Detector) Report(hb core.Heartbeat) {
	if hb.Seq <= d.snLast {
		return
	}
	d.lost += hb.Seq - d.snLast - 1
	d.snLast = hb.Seq
	d.accepted++
	if d.hasLast {
		interval := hb.Arrived.Sub(d.last).Seconds()
		if interval >= 0 {
			d.window.Push(interval)
		}
	}
	d.last = hb.Arrived
	d.hasLast = true
	if d.pendingFixed >= 0 {
		// Apply a retuned fixed interval at an arrival, where the level
		// has just collapsed: changing the due-time grid here cannot
		// re-price heartbeats that were already accruing (see Retune).
		d.fixed = d.pendingFixed
		d.pendingFixed = -1
	}
}

// estimate returns the current inter-arrival estimate and whether one is
// available.
func (d *Detector) estimate() (Estimate, bool) {
	if d.fixed > 0 {
		var sd time.Duration
		if d.window.Len() >= 2 {
			sd = time.Duration(d.window.StdDev() * float64(time.Second))
		}
		return Estimate{Mean: d.fixed, StdDev: sd}, true
	}
	if d.window.Len() == 0 {
		return Estimate{}, false
	}
	mean := time.Duration(d.window.Mean() * float64(time.Second))
	sd := time.Duration(d.window.StdDev() * float64(time.Second))
	if mean <= 0 {
		return Estimate{}, false
	}
	return Estimate{Mean: mean, StdDev: sd}, true
}

// Suspicion returns the κ suspicion level at time now: the sum of the
// contributions of all heartbeats currently missing. Heartbeats missed
// for longer than the contribution's saturation delay count as exactly 1
// without being enumerated, so queries stay O(saturation/interval) even
// for long-crashed processes.
func (d *Detector) Suspicion(now time.Time) core.Level {
	est, ok := d.estimate()
	if !ok {
		return 0
	}
	base := d.last // expected arrival time of the last received heartbeat
	elapsed := now.Sub(base)
	if elapsed <= 0 || est.Mean <= 0 {
		return 0
	}
	// Heartbeat j (1-based after the last received one) starts being
	// awaited at due_j = base + (j−1)·mean; it is due once due_j <= now.
	m := int64(elapsed/est.Mean) + 1
	sat := d.contrib.Saturation(est)
	var nSat int64
	if elapsed > sat {
		nSat = int64((elapsed-sat)/est.Mean) + 1
		if nSat > m {
			nSat = m
		}
	}
	sum := float64(nSat)
	for j := nSat + 1; j <= m; j++ {
		due := base.Add(time.Duration(j-1) * est.Mean)
		sum += d.contrib.Value(now.Sub(due), est)
	}
	return core.Level(sum).Quantize(d.eps)
}

// Snapshotable state identity (see core.State).
const (
	// StateKind identifies κ-detector state payloads.
	StateKind = "kappa"
	// StateVersion is the current payload schema version.
	StateVersion = 1
)

var _ core.Snapshotter = (*Detector)(nil)

// SnapshotState exports the detector's learned state: the inter-arrival
// sample window behind the interval estimate, the last arrival and the
// sequence cursor. The contribution function and fixed-interval
// configuration stay with the factory.
func (d *Detector) SnapshotState() core.State {
	st := core.NewState(StateKind, StateVersion)
	st.SetTime("start", d.start)
	st.SetTime("last", d.last)
	st.SetBool("has_last", d.hasLast)
	st.SetUint("sn_last", d.snLast)
	st.SetSeries("intervals", d.window.Samples(nil))
	return st
}

// RestoreState replaces the detector's learned state with a snapshot.
// When the receiving window is smaller than the snapshot, only the
// newest samples are kept.
func (d *Detector) RestoreState(st core.State) error {
	if err := st.Check(StateKind, StateVersion); err != nil {
		return err
	}
	d.start = st.Time("start")
	d.last = st.Time("last")
	d.hasLast = st.Bool("has_last")
	if d.last.IsZero() {
		d.last = d.start
	}
	d.snLast = st.Uint("sn_last")
	d.window.Restore(st.SeriesOf("intervals"))
	return nil
}

// LastSeq returns the sequence number of the most recent accepted
// heartbeat.
func (d *Detector) LastSeq() uint64 { return d.snLast }

// SampleCount returns the number of inter-arrival samples in the
// estimation window.
func (d *Detector) SampleCount() int { return d.window.Len() }
