package kappa

import (
	"fmt"
	"time"

	"accrual/internal/core"
)

var _ core.Retunable = (*Detector)(nil)

// TuneInfo reports the detector's tunable state. Interval is the fixed
// interval when one is configured (the pending retuned value if an
// update is awaiting an arrival), zero in estimating mode; ArrivalMean
// and ArrivalStdDev always come from the observed sample window.
func (d *Detector) TuneInfo() core.TuneInfo {
	info := core.TuneInfo{
		WindowSize: d.window.Cap(),
		WindowLen:  d.window.Len(),
		Interval:   d.fixed,
		Accepted:   d.accepted,
		Lost:       d.lost,
	}
	if d.pendingFixed >= 0 {
		info.Interval = d.pendingFixed
	}
	if d.window.Len() >= 1 {
		info.ArrivalMean = time.Duration(d.window.Mean() * float64(time.Second))
	}
	if d.window.Len() >= 2 {
		info.ArrivalStdDev = time.Duration(d.window.StdDev() * float64(time.Second))
	}
	return info
}

// Retune resizes the inter-arrival window immediately (lazy shrink, no
// estimate change at the retune instant) and, when the detector runs on
// a fixed interval, stages a new interval to take effect at the next
// accepted heartbeat. The deferral is what preserves continuity: the
// κ level is a sum over the due-time grid base + (j−1)·mean, so moving
// the grid between arrivals would re-price every currently missing
// heartbeat; at an arrival the sum has just collapsed and the new grid
// starts clean. In estimating mode (no fixed interval) a requested
// Interval is ignored — the window already tracks the real one.
func (d *Detector) Retune(t core.Tuning) error {
	if t.WindowSize < 0 {
		return fmt.Errorf("kappa: window size %d: %w", t.WindowSize, core.ErrBadTuning)
	}
	if t.Interval < 0 {
		return fmt.Errorf("kappa: interval %v: %w", t.Interval, core.ErrBadTuning)
	}
	if t.WindowSize > 0 {
		d.window.Resize(t.WindowSize)
	}
	if t.Interval > 0 && d.fixed > 0 && t.Interval != d.fixed {
		d.pendingFixed = t.Interval
	}
	return nil
}
