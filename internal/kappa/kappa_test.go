package kappa

import (
	"math"
	"testing"
	"time"

	"accrual/internal/core"
	"accrual/internal/stats"
)

var start = time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC)

const interval = 100 * time.Millisecond

func feed(d *Detector, seqs []uint64) time.Time {
	var last time.Time
	for _, s := range seqs {
		last = start.Add(time.Duration(s) * interval)
		d.Report(core.Heartbeat{From: "p", Seq: s, Arrived: last})
	}
	return last
}

func seqRange(from, to uint64) []uint64 {
	var out []uint64
	for s := from; s <= to; s++ {
		out = append(out, s)
	}
	return out
}

func TestStepContribution(t *testing.T) {
	s := Step{Timeout: 200 * time.Millisecond}
	est := Estimate{Mean: interval}
	if s.Value(199*time.Millisecond, est) != 0 {
		t.Error("before timeout should be 0")
	}
	if s.Value(200*time.Millisecond, est) != 1 {
		t.Error("at timeout should be 1")
	}
	if s.Saturation(est) != 200*time.Millisecond {
		t.Error("saturation should equal the timeout")
	}
}

func TestRampContribution(t *testing.T) {
	r := Ramp{Start: 100 * time.Millisecond, End: 300 * time.Millisecond}
	est := Estimate{Mean: interval}
	if r.Value(50*time.Millisecond, est) != 0 {
		t.Error("before start")
	}
	if got := r.Value(200*time.Millisecond, est); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("midpoint = %v, want 0.5", got)
	}
	if r.Value(time.Second, est) != 1 {
		t.Error("after end")
	}
}

func TestPLaterContribution(t *testing.T) {
	p := PLater{}
	est := Estimate{Mean: interval, StdDev: 20 * time.Millisecond}
	if p.Value(0, est) != 0 {
		t.Error("at zero elapsed")
	}
	mid := p.Value(interval, est)
	if math.Abs(mid-0.5) > 0.01 {
		t.Errorf("value at mean = %v, want ~0.5", mid)
	}
	if p.Value(p.Saturation(est), est) != 1 {
		t.Error("at saturation must be exactly 1")
	}
	// Monotone.
	prev := -1.0
	for d := time.Duration(0); d < 500*time.Millisecond; d += 5 * time.Millisecond {
		cur := p.Value(d, est)
		if cur < prev {
			t.Fatalf("contribution decreased at %v", d)
		}
		prev = cur
	}
}

func TestPLaterDefaults(t *testing.T) {
	p := PLater{}
	est := Estimate{Mean: interval} // zero stddev -> floored at 1ms
	if sat := p.Saturation(est); sat != interval+8*time.Millisecond {
		t.Errorf("saturation = %v, want mean + 8ms", sat)
	}
}

func TestSuspicionZeroWithoutEstimate(t *testing.T) {
	d := New(start, Step{Timeout: 200 * time.Millisecond})
	if got := d.Suspicion(start.Add(time.Hour)); got != 0 {
		t.Errorf("no estimate: level = %v", got)
	}
}

func TestSuspicionZeroWhileHealthy(t *testing.T) {
	d := New(start, Step{Timeout: 200 * time.Millisecond})
	last := feed(d, seqRange(1, 20))
	if got := d.Suspicion(last.Add(50 * time.Millisecond)); got != 0 {
		t.Errorf("healthy level = %v, want 0", got)
	}
}

func TestSuspicionCountsMissedHeartbeats(t *testing.T) {
	// After a crash, κ with a step contribution converges to a count of
	// missed heartbeats.
	d := New(start, Step{Timeout: 150 * time.Millisecond}, WithFixedInterval(interval))
	last := feed(d, seqRange(1, 20))
	// 1 second after the last heartbeat: heartbeats due at +100..+1000ms.
	// Heartbeat j is awaited from (j-1)*100ms; contribution 1 when
	// elapsed >= 150ms, i.e. heartbeats awaited since <= 850ms: j-1 <= 8.
	got := d.Suspicion(last.Add(time.Second))
	if got != 9 {
		t.Errorf("level 1s after crash = %v, want 9", got)
	}
	// Much later the count keeps growing linearly.
	got10 := d.Suspicion(last.Add(10 * time.Second))
	if got10 < 95 || got10 > 100 {
		t.Errorf("level 10s after crash = %v, want ~99", got10)
	}
}

func TestLossBurstRecovery(t *testing.T) {
	// Heartbeats 21..25 are lost; when 26 arrives the level collapses
	// back to zero — the κ property that motivates the framework.
	d := New(start, Step{Timeout: 150 * time.Millisecond}, WithFixedInterval(interval))
	feed(d, seqRange(1, 20))
	// During the burst the level climbs.
	during := d.Suspicion(start.Add(25 * interval))
	if during < 3 {
		t.Errorf("level during burst = %v, want >= 3", during)
	}
	// Heartbeat 26 arrives on schedule.
	at26 := start.Add(26 * interval)
	d.Report(core.Heartbeat{From: "p", Seq: 26, Arrived: at26})
	after := d.Suspicion(at26.Add(10 * time.Millisecond))
	if after != 0 {
		t.Errorf("level after recovery = %v, want 0", after)
	}
}

func TestGradualTransition(t *testing.T) {
	// With a ramp contribution the level is fractional at low suspicion
	// (aggressive range) before growing into integer counting
	// (conservative range).
	d := New(start, Ramp{Start: 50 * time.Millisecond, End: 250 * time.Millisecond},
		WithFixedInterval(interval))
	last := feed(d, seqRange(1, 10))
	lowRange := d.Suspicion(last.Add(150 * time.Millisecond))
	if lowRange <= 0 || lowRange >= 2 {
		t.Errorf("aggressive-range level = %v, want fractional in (0,2)", lowRange)
	}
	high := d.Suspicion(last.Add(3 * time.Second))
	if high < 25 {
		t.Errorf("conservative-range level = %v, want ~28", high)
	}
}

func TestSaturationShortcutMatchesBruteForce(t *testing.T) {
	// The O(1) counting of saturated heartbeats must agree with direct
	// summation.
	contrib := Ramp{Start: 0, End: 300 * time.Millisecond}
	d := New(start, contrib, WithFixedInterval(interval))
	last := feed(d, seqRange(1, 5))
	for _, elapsed := range []time.Duration{
		250 * time.Millisecond, time.Second, 5 * time.Second, 30 * time.Second,
	} {
		now := last.Add(elapsed)
		got := float64(d.Suspicion(now))
		want := 0.0
		est := Estimate{Mean: interval}
		for j := 1; ; j++ {
			due := last.Add(time.Duration(j-1) * interval)
			if due.After(now) {
				break
			}
			want += contrib.Value(now.Sub(due), est)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("at +%v: level %v, brute force %v", elapsed, got, want)
		}
	}
}

func TestEstimatedIntervalFromWindow(t *testing.T) {
	d := New(start, Step{Timeout: 150 * time.Millisecond})
	last := feed(d, seqRange(1, 50))
	est, ok := d.estimate()
	if !ok {
		t.Fatal("no estimate after 50 heartbeats")
	}
	if diff := est.Mean - interval; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("estimated mean = %v, want ~%v", est.Mean, interval)
	}
	// And the level behaves as with the fixed interval.
	if got := d.Suspicion(last.Add(time.Second)); got != 9 {
		t.Errorf("level = %v, want 9", got)
	}
}

func TestStaleHeartbeatsIgnored(t *testing.T) {
	d := New(start, Step{Timeout: 150 * time.Millisecond}, WithFixedInterval(interval))
	feed(d, seqRange(1, 10))
	lvlBefore := d.Suspicion(start.Add(15 * interval))
	d.Report(core.Heartbeat{From: "p", Seq: 4, Arrived: start.Add(14 * interval)})
	lvlAfter := d.Suspicion(start.Add(15 * interval))
	if lvlBefore != lvlAfter {
		t.Errorf("stale heartbeat changed level: %v -> %v", lvlBefore, lvlAfter)
	}
}

func TestResolutionQuantisation(t *testing.T) {
	d := New(start, Ramp{Start: 0, End: time.Second},
		WithFixedInterval(interval), WithResolution(0.25))
	last := feed(d, seqRange(1, 5))
	lvl := float64(d.Suspicion(last.Add(777 * time.Millisecond)))
	if r := math.Mod(lvl, 0.25); r != 0 {
		t.Errorf("level %v not a multiple of 0.25", lvl)
	}
}

func TestMonotoneAfterCrash(t *testing.T) {
	d := New(start, PLater{}, WithFixedInterval(interval))
	last := feed(d, seqRange(1, 30))
	var history []core.QueryRecord
	for i := 0; i < 800; i++ {
		at := last.Add(time.Duration(i) * 25 * time.Millisecond)
		history = append(history, core.QueryRecord{At: at, Level: d.Suspicion(at)})
	}
	rep := core.CheckAccruement(history, 10, 0)
	if !rep.Holds {
		t.Fatalf("Accruement violated: %s", rep.Violation)
	}
}

func TestSampleCount(t *testing.T) {
	d := New(start, Step{Timeout: 150 * time.Millisecond}, WithWindowSize(5))
	feed(d, seqRange(1, 10))
	if d.SampleCount() != 5 {
		t.Errorf("SampleCount = %d, want 5 (window capped)", d.SampleCount())
	}
	if d.LastSeq() != 10 {
		t.Errorf("LastSeq = %d", d.LastSeq())
	}
}

func TestDistContribution(t *testing.T) {
	c := DistContribution{
		Dist:     stats.Erlang{K: 2, Lambda: 20}, // mean 100ms
		Saturate: 500 * time.Millisecond,
	}
	est := Estimate{Mean: interval}
	if c.Value(0, est) != 0 {
		t.Error("zero delta")
	}
	if c.Value(600*time.Millisecond, est) != 1 {
		t.Error("past saturation must be exactly 1")
	}
	if c.Saturation(est) != 500*time.Millisecond {
		t.Error("saturation cutoff")
	}
	prev := -1.0
	for d := time.Duration(0); d <= 600*time.Millisecond; d += 10 * time.Millisecond {
		cur := c.Value(d, est)
		if cur < prev {
			t.Fatalf("contribution decreased at %v", d)
		}
		if cur < 0 || cur > 1 {
			t.Fatalf("contribution %v out of range at %v", cur, d)
		}
		prev = cur
	}
}

func TestDistContributionDetector(t *testing.T) {
	d := New(start, DistContribution{
		Dist:     stats.Normal{Mu: 0.1, Sigma: 0.02},
		Saturate: 300 * time.Millisecond,
	}, WithFixedInterval(interval))
	last := feed(d, seqRange(1, 20))
	// The normal waiting-time model has infinite support, so the level
	// is tiny-but-nonzero even while healthy.
	if got := d.Suspicion(last.Add(50 * time.Millisecond)); got > 0.05 {
		t.Errorf("healthy level = %v, want near 0", got)
	}
	late := d.Suspicion(last.Add(2 * time.Second))
	if late < 15 {
		t.Errorf("level 2s after crash = %v, want ~17+", late)
	}
}
