package kappa

import (
	"time"

	"accrual/internal/core"
)

var _ core.EvalSnapshotter = (*Detector)(nil)

// snapEval is the κ detector's core.EvalAux hook: it re-runs the
// contribution sum of Suspicion from published parameters instead of
// detector state. One snapEval is allocated per detector at
// construction (never per publication) and is immutable afterwards —
// the contribution function itself is configuration, fixed at New, so
// sharing it across lock-free readers is safe.
type snapEval struct {
	contrib Contribution
}

// EvalLevel replicates Detector.Suspicion over the published
// parameters: P1/P2 carry the inter-arrival estimate (mean and stddev,
// nanoseconds), Ref the last arrival. The due-time grid walk, the
// saturation shortcut and the quantisation are the same code shape as
// the live path, so the two agree wherever their clock arithmetic does.
func (a *snapEval) EvalLevel(s core.EvalSnapshot, now time.Time) core.Level {
	est := Estimate{Mean: time.Duration(s.P1), StdDev: time.Duration(s.P2)}
	elapsed := time.Duration(now.UnixNano() - s.Ref)
	if elapsed <= 0 || est.Mean <= 0 {
		return 0
	}
	base := time.Unix(0, s.Ref)
	m := int64(elapsed/est.Mean) + 1
	sat := a.contrib.Saturation(est)
	var nSat int64
	if elapsed > sat {
		nSat = int64((elapsed-sat)/est.Mean) + 1
		if nSat > m {
			nSat = m
		}
	}
	sum := float64(nSat)
	for j := nSat + 1; j <= m; j++ {
		due := base.Add(time.Duration(j-1) * est.Mean)
		sum += a.contrib.Value(now.Sub(due), est)
	}
	return core.Level(sum).Quantize(s.Eps)
}

// EvalSnapshot publishes the detector's frozen interpretation function
// (core.EvalSnapshotter): between heartbeats the κ level is the
// contribution sum over the due-time grid anchored at the last arrival,
// so the inter-arrival estimate, the last arrival and the (immutable)
// contribution curve are the whole state. The curve rides along as the
// snapshot's Aux hook.
func (d *Detector) EvalSnapshot() core.EvalSnapshot {
	est, ok := d.estimate()
	if !ok || est.Mean <= 0 {
		return core.EvalSnapshot{Kind: core.EvalZero}
	}
	if d.aux == nil {
		// Detectors predating New (zero-value construction in tests)
		// lazily build the hook; New preallocates it.
		d.aux = &snapEval{contrib: d.contrib}
	}
	return core.EvalSnapshot{
		Kind: core.EvalAuxKind,
		Ref:  d.last.UnixNano(),
		P1:   float64(est.Mean),
		P2:   float64(est.StdDev),
		Eps:  d.eps,
		Aux:  d.aux,
	}
}
