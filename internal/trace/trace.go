// Package trace records failure detector histories — suspicion-level
// query records and binary transition logs — and exports them as CSV or
// JSON for offline plotting. It is the bridge between the simulator's
// query loops and the QoS analysis of internal/qos.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"accrual/internal/core"
)

// History is an append-only sequence of answered suspicion-level queries
// for one (monitor, monitored) pair. The zero value is ready to use.
type History struct {
	records []core.QueryRecord
}

// Append records one answered query. Queries must be appended in
// chronological order.
func (h *History) Append(at time.Time, level core.Level) {
	h.records = append(h.records, core.QueryRecord{At: at, Level: level})
}

// Records returns the underlying records. The caller must not modify the
// returned slice.
func (h *History) Records() []core.QueryRecord { return h.records }

// Len returns the number of recorded queries.
func (h *History) Len() int { return len(h.records) }

// Max returns the maximum recorded level, or 0 for an empty history.
func (h *History) Max() core.Level {
	var max core.Level
	for _, r := range h.records {
		if r.Level > max {
			max = r.Level
		}
	}
	return max
}

// Last returns the most recent record and whether the history is
// non-empty.
func (h *History) Last() (core.QueryRecord, bool) {
	if len(h.records) == 0 {
		return core.QueryRecord{}, false
	}
	return h.records[len(h.records)-1], true
}

// WriteCSV writes "time_s,level" rows, with times in seconds relative to
// the first record.
func (h *History) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "level"}); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	var t0 time.Time
	if len(h.records) > 0 {
		t0 = h.records[0].At
	}
	for _, r := range h.records {
		row := []string{
			strconv.FormatFloat(r.At.Sub(t0).Seconds(), 'f', 6, 64),
			strconv.FormatFloat(float64(r.Level), 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush csv: %w", err)
	}
	return nil
}

// historyJSON is the JSON shape of a history record.
type historyJSON struct {
	At    time.Time `json:"at"`
	Level float64   `json:"level"`
}

// WriteJSON writes the history as a JSON array of {at, level} objects.
func (h *History) WriteJSON(w io.Writer) error {
	out := make([]historyJSON, len(h.records))
	for i, r := range h.records {
		out[i] = historyJSON{At: r.At, Level: float64(r.Level)}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: encode json: %w", err)
	}
	return nil
}

// StatusObserver turns a stream of sampled binary statuses into a
// transition log. Feed it the detector output at every query; it detects
// S- and T-transitions. The zero value starts from the Trusted state.
type StatusObserver struct {
	cur         core.Status
	transitions []core.Transition
	queries     int
}

// NewStatusObserver returns an observer whose initial state is initial
// (Trusted if zero).
func NewStatusObserver(initial core.Status) *StatusObserver {
	if initial == 0 {
		initial = core.Trusted
	}
	return &StatusObserver{cur: initial}
}

// Observe records the status at a query time, appending a transition if
// the status changed.
func (o *StatusObserver) Observe(at time.Time, s core.Status) {
	if o.cur == 0 {
		o.cur = core.Trusted
	}
	o.queries++
	if s == o.cur || !s.Valid() {
		return
	}
	kind := core.STransition
	if s == core.Trusted {
		kind = core.TTransition
	}
	o.transitions = append(o.transitions, core.Transition{At: at, Kind: kind})
	o.cur = s
}

// Transitions returns the recorded transitions. The caller must not
// modify the returned slice.
func (o *StatusObserver) Transitions() []core.Transition { return o.transitions }

// Current returns the most recently observed status.
func (o *StatusObserver) Current() core.Status {
	if o.cur == 0 {
		return core.Trusted
	}
	return o.cur
}

// Queries returns how many statuses have been observed.
func (o *StatusObserver) Queries() int { return o.queries }

// LastTransition returns the final transition and whether any occurred.
func (o *StatusObserver) LastTransition() (core.Transition, bool) {
	if len(o.transitions) == 0 {
		return core.Transition{}, false
	}
	return o.transitions[len(o.transitions)-1], true
}

// WriteTransitionsCSV writes "time_s,kind" rows relative to start.
func WriteTransitionsCSV(w io.Writer, start time.Time, trs []core.Transition) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "kind"}); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	for _, tr := range trs {
		row := []string{
			strconv.FormatFloat(tr.At.Sub(start).Seconds(), 'f', 6, 64),
			tr.Kind.String(),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush csv: %w", err)
	}
	return nil
}
