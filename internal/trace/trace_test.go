package trace

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"accrual/internal/core"
)

var start = time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC)

func TestHistoryAppendAndAccessors(t *testing.T) {
	var h History
	if h.Len() != 0 || h.Max() != 0 {
		t.Error("zero history should be empty")
	}
	if _, ok := h.Last(); ok {
		t.Error("Last on empty history")
	}
	h.Append(start, 1)
	h.Append(start.Add(time.Second), 3)
	h.Append(start.Add(2*time.Second), 2)
	if h.Len() != 3 {
		t.Errorf("Len = %d", h.Len())
	}
	if h.Max() != 3 {
		t.Errorf("Max = %v", h.Max())
	}
	last, ok := h.Last()
	if !ok || last.Level != 2 {
		t.Errorf("Last = %+v, %v", last, ok)
	}
	if len(h.Records()) != 3 {
		t.Error("Records length")
	}
}

func TestHistoryWriteCSV(t *testing.T) {
	var h History
	h.Append(start, 0.5)
	h.Append(start.Add(1500*time.Millisecond), 2)
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), sb.String())
	}
	if lines[0] != "time_s,level" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0.000000,0.5" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "1.500000,2" {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestHistoryWriteJSON(t *testing.T) {
	var h History
	h.Append(start, 1.25)
	var sb strings.Builder
	if err := h.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		At    time.Time `json:"at"`
		Level float64   `json:"level"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].Level != 1.25 || !decoded[0].At.Equal(start) {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestStatusObserverDetectsTransitions(t *testing.T) {
	o := NewStatusObserver(core.Trusted)
	seq := []struct {
		at     time.Time
		status core.Status
	}{
		{start, core.Trusted},
		{start.Add(1 * time.Second), core.Suspected}, // S
		{start.Add(2 * time.Second), core.Suspected},
		{start.Add(3 * time.Second), core.Trusted},   // T
		{start.Add(4 * time.Second), core.Suspected}, // S
	}
	for _, s := range seq {
		o.Observe(s.at, s.status)
	}
	trs := o.Transitions()
	if len(trs) != 3 {
		t.Fatalf("transitions = %d, want 3", len(trs))
	}
	wantKinds := []core.TransitionKind{core.STransition, core.TTransition, core.STransition}
	for i, k := range wantKinds {
		if trs[i].Kind != k {
			t.Errorf("transition %d kind = %v, want %v", i, trs[i].Kind, k)
		}
	}
	if o.Current() != core.Suspected {
		t.Errorf("Current = %v", o.Current())
	}
	if o.Queries() != 5 {
		t.Errorf("Queries = %d", o.Queries())
	}
	last, ok := o.LastTransition()
	if !ok || last.Kind != core.STransition || !last.At.Equal(start.Add(4*time.Second)) {
		t.Errorf("LastTransition = %+v, %v", last, ok)
	}
}

func TestStatusObserverZeroValue(t *testing.T) {
	var o StatusObserver
	if o.Current() != core.Trusted {
		t.Error("zero observer should start trusted")
	}
	o.Observe(start, core.Suspected)
	if len(o.Transitions()) != 1 {
		t.Error("zero observer should record transitions")
	}
	if _, ok := (&StatusObserver{}).LastTransition(); ok {
		t.Error("LastTransition on fresh observer")
	}
}

func TestStatusObserverIgnoresInvalid(t *testing.T) {
	o := NewStatusObserver(0)
	o.Observe(start, core.Status(42))
	if len(o.Transitions()) != 0 {
		t.Error("invalid status must not create a transition")
	}
}

func TestWriteTransitionsCSV(t *testing.T) {
	trs := []core.Transition{
		{At: start.Add(2 * time.Second), Kind: core.STransition},
		{At: start.Add(3 * time.Second), Kind: core.TTransition},
	}
	var sb strings.Builder
	if err := WriteTransitionsCSV(&sb, start, trs); err != nil {
		t.Fatal(err)
	}
	want := "time_s,kind\n2.000000,S\n3.000000,T\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestHistoryFeedsPropertyCheckers(t *testing.T) {
	// trace.History records are directly usable by core's checkers.
	var h History
	for i := 0; i < 10; i++ {
		h.Append(start.Add(time.Duration(i)*time.Second), core.Level(i))
	}
	rep := core.CheckAccruement(h.Records(), 0, 1)
	if !rep.Holds {
		t.Errorf("Accruement on increasing history: %s", rep.Violation)
	}
}

// failWriter fails after n successful writes, to exercise the error
// paths of the CSV/JSON writers.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errFail
	}
	w.n--
	return len(p), nil
}

var errFail = errors.New("synthetic write failure")

func TestWriteErrorsPropagate(t *testing.T) {
	var h History
	h.Append(start, 1)
	if err := h.WriteCSV(&failWriter{n: 0}); err == nil {
		t.Error("CSV header write failure not propagated")
	}
	if err := h.WriteJSON(&failWriter{n: 0}); err == nil {
		t.Error("JSON write failure not propagated")
	}
	trs := []core.Transition{{At: start, Kind: core.STransition}}
	if err := WriteTransitionsCSV(&failWriter{n: 0}, start, trs); err == nil {
		t.Error("transitions CSV write failure not propagated")
	}
}
