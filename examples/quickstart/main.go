// Quickstart: monitor one process with the φ accrual failure detector.
//
// The program synthesises a heartbeat stream (100ms ± jitter), feeds it
// to the detector, then lets the process "crash" and prints how the
// suspicion level accrues — first staying near zero while heartbeats
// arrive, then growing without bound once they stop. Two applications
// with different thresholds read the same level and react at different
// times: that is the whole point of the accrual model.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	"accrual"
)

func main() {
	start := time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC)
	const interval = 100 * time.Millisecond

	det := accrual.NewPhiDetector(start, interval)
	rng := rand.New(rand.NewPCG(1, 2))

	// Phase 1: the process is alive and sends 200 heartbeats over a
	// fairly noisy channel (±25ms of jitter).
	at := start
	for seq := uint64(1); seq <= 200; seq++ {
		jitter := time.Duration(rng.NormFloat64() * 25 * float64(time.Millisecond))
		at = at.Add(interval + jitter)
		det.Report(accrual.Heartbeat{From: "node-1", Seq: seq, Arrived: at})
	}
	crash := at // the process crashes right after its last heartbeat

	// Two applications interpret the same suspicion level differently.
	const (
		aggressiveThreshold   = accrual.Level(1) // ~10% wrong-suspicion odds
		conservativeThreshold = accrual.Level(8) // ~10^-8 wrong-suspicion odds
	)

	fmt.Println("time since crash   suspicion   aggressive(Φ>1)  conservative(Φ>8)")
	var aggressiveAt, conservativeAt time.Duration
	for offset := time.Duration(0); offset <= time.Second; offset += 25 * time.Millisecond {
		now := crash.Add(offset)
		level := det.Suspicion(now)
		agg, cons := "trusts", "trusts"
		if level > aggressiveThreshold {
			agg = "SUSPECTS"
			if aggressiveAt == 0 {
				aggressiveAt = offset
			}
		}
		if level > conservativeThreshold {
			cons = "SUSPECTS"
			if conservativeAt == 0 {
				conservativeAt = offset
			}
		}
		fmt.Printf("%8s           %8.3f   %-16s %s\n", offset, float64(level), agg, cons)
	}
	fmt.Printf("\nthe aggressive app reacted at +%v, the conservative one at +%v —\n", aggressiveAt, conservativeAt)
	fmt.Println("one monitor, two qualities of service, zero re-monitoring.")
}
