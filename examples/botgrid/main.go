// Botgrid: the Bag-of-Tasks scenario from §1.3 of the paper (the OurGrid
// example that motivates accrual failure detectors).
//
// A master dispatches 15 tasks of 8 CPU-seconds each to 5 workers over a
// noisy network with loss bursts; two workers crash mid-run. Three
// master policies compete:
//
//   - an aggressive binary timeout, which reacts fast but wrongly aborts
//     long-running tasks on every network hiccup, wasting their CPU;
//   - a conservative binary timeout, which wastes little but is slow to
//     reassign the tasks of genuinely crashed workers;
//   - the accrual cost-aware policy: dispatch ranked by suspicion level,
//     and a restart threshold that grows with the CPU already invested —
//     the two usage patterns §1.3 says binary detectors cannot express.
//
// Run with: go run ./examples/botgrid
package main

import (
	"fmt"
	"time"

	"accrual/internal/bot"
	"accrual/internal/sim"
	"accrual/internal/stats"
)

func main() {
	policies := []struct {
		name   string
		policy bot.Policy
	}{
		{"aggressive binary (Φ>1)", bot.FixedTimeout{Threshold: 1}},
		{"conservative binary (Φ>12)", bot.FixedTimeout{Threshold: 12}},
		{"cost-aware accrual", bot.CostAware{DispatchMax: 2, RestartBase: 1, RestartPerSecond: 1}},
	}
	fmt.Println("15 tasks × 8s CPU over 5 workers; w1 crashes at t=10s, w3 at t=25s")
	fmt.Println("network: 20ms ± 15ms delays with Gilbert–Elliott loss bursts")
	fmt.Println()
	fmt.Printf("%-28s %-9s %-12s %-9s %-13s %s\n",
		"POLICY", "DONE", "MAKESPAN", "RESTARTS", "WRONG-ABORTS", "WASTED-CPU")
	for _, p := range policies {
		m := runOnce(p.policy)
		fmt.Printf("%-28s %-9v %-12s %-9d %-13d %s\n",
			p.name, m.AllDone, m.Makespan.Truncate(100*time.Millisecond),
			m.Restarts, m.WrongAborts, m.WastedCPU.Truncate(100*time.Millisecond))
	}
	fmt.Println()
	fmt.Println("the accrual policy tolerates hiccups on mature tasks (threshold grows")
	fmt.Println("with elapsed CPU) yet still reassigns crashed workers' tasks promptly.")
}

func runOnce(policy bot.Policy) bot.Metrics {
	s := sim.New(11)
	tasks := make([]bot.Task, 15)
	for i := range tasks {
		tasks[i] = bot.Task{ID: i, Duration: 8 * time.Second}
	}
	cfg := bot.Config{
		Sim: s,
		Net: sim.NewNetwork(s, sim.Link{
			Delay: sim.RandomDelay{Dist: stats.Normal{Mu: 0.02, Sigma: 0.015}, Min: time.Millisecond},
			Loss:  &sim.GilbertElliott{PGoodToBad: 0.03, PBadToGood: 0.3, LossBad: 1},
		}),
		Workers: []string{"w0", "w1", "w2", "w3", "w4"},
		Crashes: map[string]time.Time{
			"w1": sim.Epoch.Add(10 * time.Second),
			"w3": sim.Epoch.Add(25 * time.Second),
		},
		Tasks:             tasks,
		HeartbeatInterval: 100 * time.Millisecond,
		CheckInterval:     250 * time.Millisecond,
		Policy:            policy,
		Horizon:           sim.Epoch.Add(15 * time.Minute),
	}
	m, err := bot.Run(cfg)
	if err != nil {
		panic(err)
	}
	return m
}
