// Daemon: the failure-detection service over a real network (loopback
// UDP + HTTP), embedded in one process for demonstration.
//
// Two "nodes" send real UDP heartbeats every 50ms to a monitor that
// serves suspicion levels over HTTP/JSON — the deployment the paper's §7
// sketches (a per-host service; applications interpret the levels
// themselves). Halfway through, node-2's sender is stopped (a crash);
// watch its level climb while node-1 stays near zero. Everything here
// also works across machines: see cmd/accruald and cmd/accrualctl.
//
// Run with: go run ./examples/daemon
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"accrual"
	"accrual/internal/transport"
)

func main() {
	const interval = 50 * time.Millisecond

	mon := accrual.NewMonitor(accrual.WallClock(), func(_ string, start time.Time) accrual.Detector {
		return accrual.NewPhiDetector(start, interval)
	})

	// Heartbeat ingress: a real UDP socket on loopback.
	listener, err := transport.Listen("127.0.0.1:0", mon)
	must(err)
	defer listener.Close()

	// Query egress: the HTTP/JSON API.
	api := httptest.NewServer(transport.NewAPI(mon))
	defer api.Close()
	fmt.Printf("heartbeats -> %s, queries -> %s\n\n", listener.Addr(), api.URL)

	// Two monitored nodes.
	node1, err := transport.NewSender("node-1", listener.Addr().String(), interval)
	must(err)
	must(node1.Start())
	defer node1.Stop()
	node2, err := transport.NewSender("node-2", listener.Addr().String(), interval)
	must(err)
	must(node2.Start())

	poll := func(label string) {
		var resp transport.ProcessesResponse
		r, err := http.Get(api.URL + "/v1/processes")
		must(err)
		defer r.Body.Close()
		must(json.NewDecoder(r.Body).Decode(&resp))
		fmt.Printf("%-22s", label)
		for _, p := range resp.Processes {
			fmt.Printf("  %s=%.3f", p.ID, p.Level)
		}
		fmt.Println()
	}

	time.Sleep(time.Second)
	poll("both alive:")

	fmt.Println("\nstopping node-2's heartbeats (crash)...")
	node2.Stop()
	for i := 1; i <= 5; i++ {
		time.Sleep(400 * time.Millisecond)
		poll(fmt.Sprintf("+%dms:", i*400))
	}

	// Client-side interpretation over HTTP: the threshold belongs to the
	// caller, not the service.
	var st transport.StatusResponse
	r, err := http.Get(api.URL + "/v1/status?id=node-2&threshold=3")
	must(err)
	defer r.Body.Close()
	must(json.NewDecoder(r.Body).Decode(&st))
	fmt.Printf("\nclient verdict with its own threshold Φ>3: node-2 is %s (level %.2f)\n", st.Status, st.Level)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
