// Gossipcluster: large-scale failure detection the way §1.1/§6 of the
// paper sketch it — heartbeat counters disseminated by gossip, accrual
// detectors interpreting the merge stream, and two consumers built on the
// levels: an Ω leader-election oracle and a slowness oracle ranking nodes
// by responsiveness.
//
// A 24-node cluster gossips with fanout 2. The initial leader crashes at
// t=30s; watch one observer's view converge to a new live leader while
// the crashed node sinks to the bottom of the responsiveness ranking.
//
// Run with: go run ./examples/gossipcluster
package main

import (
	"fmt"
	"strings"
	"time"

	"accrual/internal/gossip"
	"accrual/internal/omega"
	"accrual/internal/service"
	"accrual/internal/sim"
	"accrual/internal/slowness"
	"accrual/internal/stats"
)

func main() {
	s := sim.New(16)
	net := sim.NewNetwork(s, sim.Link{
		Delay: sim.RandomDelay{Dist: stats.Normal{Mu: 0.01, Sigma: 0.003}, Min: time.Millisecond},
		Loss:  sim.BernoulliLoss{P: 0.02},
	})
	nodes := make([]string, 24)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("n%02d", i)
	}
	crashAt := sim.Epoch.Add(30 * time.Second)
	horizon := sim.Epoch.Add(60 * time.Second)
	cluster, err := gossip.New(gossip.Config{
		Sim: s, Net: net, Nodes: nodes, Fanout: 2,
		Interval: 100 * time.Millisecond,
		Crashes:  map[string]time.Time{"n02": crashAt},
		Horizon:  horizon,
	})
	if err != nil {
		panic(err)
	}

	observer := cluster.Node("n23")
	leaderOracle := omega.New(func() []service.RankedProcess {
		return observer.Snapshot(s.Now())
	}, 3)
	ranker := slowness.New(0.2, 0.25)

	fmt.Println("24 nodes, gossip fanout 2 every 100ms, 2% loss; n02 (the initial leader) crashes at t=30s")
	fmt.Println("observer: n23 (everything below is its local view)")
	fmt.Println()
	for tick := 5; tick <= 60; tick += 5 {
		s.RunUntil(sim.Epoch.Add(time.Duration(tick) * time.Second))
		snap := observer.Snapshot(s.Now())
		ranker.Update(snap)
		leader, _ := leaderOracle.Leader()
		n02Level, _ := observer.Suspicion("n02", s.Now())
		fmt.Printf("t=%2ds  leader=%s  level(n02)=%8.2f  most responsive: %s\n",
			tick, leader, float64(n02Level), strings.Join(ranker.Fastest(3), " "))
	}
	fmt.Println()
	leader, _ := leaderOracle.Leader()
	fmt.Printf("final leader: %s (stable, live); crashed n02 ranks last of %d\n",
		leader, len(ranker.Order()))
}
