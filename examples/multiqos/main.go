// Multiqos: one monitoring service, several applications with different
// QoS needs — the architecture of the paper's Figure 2.
//
// A Monitor ingests heartbeats from three simulated cluster nodes. Four
// applications attach to it: a realtime scheduler (aggressive threshold),
// a batch system (balanced), an archiver (conservative) and an
// "autotuned" consumer using the paper's Algorithm 1, which needs no
// threshold at all. Node "node-2" crashes mid-run; each application
// notices on its own schedule, and each transition is printed as it is
// observed.
//
// Run with: go run ./examples/multiqos
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	"accrual"
	"accrual/internal/clock"
)

func main() {
	start := time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC)
	clk := clock.NewManual(start)
	const interval = 100 * time.Millisecond

	mon := accrual.NewMonitor(clk, func(_ string, start time.Time) accrual.Detector {
		return accrual.NewPhiDetector(start, interval)
	})

	apps := []*accrual.App{
		mon.NewApp("realtime", accrual.ConstantPolicy(1), onTransition(start, "realtime  (Φ>1)")),
		mon.NewApp("batch", accrual.ConstantPolicy(3), onTransition(start, "batch     (Φ>3)")),
		mon.NewApp("archiver", accrual.ConstantPolicy(8), onTransition(start, "archiver  (Φ>8)")),
		mon.NewApp("autotuned", accrual.AdaptivePolicy(), onTransition(start, "autotuned (Alg.1)")),
	}

	nodes := []string{"node-1", "node-2", "node-3"}
	crashAt := start.Add(20 * time.Second) // node-2 dies here
	rng := rand.New(rand.NewPCG(7, 7))
	seq := map[string]uint64{}

	fmt.Println("running 30 simulated seconds; node-2 crashes at t=20s")
	fmt.Println()
	for clk.Now().Before(start.Add(30 * time.Second)) {
		clk.Advance(interval)
		now := clk.Now()
		for _, n := range nodes {
			if n == "node-2" && !now.Before(crashAt) {
				continue // crashed: no more heartbeats
			}
			seq[n]++
			jitter := time.Duration(rng.NormFloat64() * 5 * float64(time.Millisecond))
			_ = mon.Heartbeat(accrual.Heartbeat{From: n, Seq: seq[n], Arrived: now.Add(jitter)})
		}
		for _, app := range apps {
			app.Poll() // transitions fire the handlers below
		}
	}

	fmt.Println()
	fmt.Println("final suspicion ranking (least suspected first):")
	for _, rp := range mon.Ranked() {
		fmt.Printf("  %-8s %10.3f\n", rp.ID, float64(rp.Level))
	}
}

// onTransition prints every S-/T-transition an application observes,
// stamped with simulated time since start.
func onTransition(start time.Time, label string) accrual.AppOption {
	return accrual.WithTransitionHandler(func(proc string, tr accrual.Transition, status accrual.Status) {
		fmt.Printf("t=%-6s %s: %s -> %s\n",
			tr.At.Sub(start).Truncate(100*time.Millisecond), label, proc, status)
	})
}
