// Consensus: the paper's computational-equivalence result (§4), run end
// to end. Five simulated processes solve Chandra–Toueg consensus; the
// failure detector each process uses to suspect the round coordinator is
// a φ accrual detector read through the paper's Algorithm 1 — the
// parameter-free accrual→binary transformation. The coordinator of the
// first round crashes almost immediately; the detectors unblock the
// protocol and a later round decides.
//
// Run with: go run ./examples/consensus
package main

import (
	"fmt"
	"sort"
	"time"

	"accrual/internal/consensus"
	"accrual/internal/sim"
	"accrual/internal/stats"
)

func main() {
	s := sim.New(3)
	ids := []string{"a", "b", "c", "d", "e"}
	initial := map[string]consensus.Value{
		"a": "apply-batch-17", "b": "apply-batch-18", "c": "apply-batch-18",
		"d": "apply-batch-19", "e": "apply-batch-18",
	}
	cfg := consensus.Config{
		Sim: s,
		Net: sim.NewNetwork(s, sim.Link{
			Delay: sim.RandomDelay{Dist: stats.Uniform{A: 0.001, B: 0.01}},
		}),
		HeartbeatNet: sim.NewNetwork(s, sim.Link{
			Delay: sim.RandomDelay{Dist: stats.Normal{Mu: 0.005, Sigma: 0.002}, Min: time.Millisecond},
			Loss:  sim.BernoulliLoss{P: 0.05},
		}),
		Processes:         ids,
		Initial:           initial,
		Crashes:           map[string]time.Time{"a": sim.Epoch.Add(time.Millisecond)},
		HeartbeatInterval: 50 * time.Millisecond,
		QueryInterval:     25 * time.Millisecond,
		Horizon:           sim.Epoch.Add(time.Minute),
	}
	fmt.Println("5 processes propose values; process a (round-1 coordinator) crashes at t=1ms")
	fmt.Println("failure detection: φ accrual levels interpreted by Algorithm 1 (no tuning)")
	fmt.Println()
	res, err := consensus.Run(cfg)
	if err != nil {
		panic(err)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if v, ok := res.Decisions[id]; ok {
			fmt.Printf("  %s decided %q in round %d at t=%v\n",
				id, v, res.Rounds[id], res.DecideAt[id].Sub(sim.Epoch).Truncate(time.Millisecond))
		} else {
			fmt.Printf("  %s never decided (crashed)\n", id)
		}
	}
	fmt.Printf("\nagreement: %v, validity: %v, consensus messages: %d\n",
		res.Agreement(), res.Validity(initial), res.Messages)
}
