// Qosplan: from QoS requirements to detector parameters, and back.
//
// The paper frames failure detection as a service with per-application
// quality of service (§1, §4.4). This example closes the engineering
// loop for Chen's detector (§5.2):
//
//  1. an application states its requirements (detect crashes within 2s,
//     at most one wrong suspicion per hour),
//  2. the Chen configurator derives heartbeat parameters (interval η and
//     safety margin α) from those requirements plus measured network
//     statistics,
//  3. a simulated deployment with exactly those network statistics
//     verifies that the achieved QoS meets the plan.
//
// Run with: go run ./examples/qosplan
package main

import (
	"fmt"
	"time"

	"accrual/internal/chen"
	"accrual/internal/core"
	"accrual/internal/qos"
	"accrual/internal/sim"
	"accrual/internal/stats"
	"accrual/internal/trace"
	"accrual/internal/transform"
)

func main() {
	req := chen.QoS{
		MaxDetectionTime:     2 * time.Second,
		MinMistakeRecurrence: time.Hour,
	}
	netStats := chen.NetworkStats{
		LossProb:    0.02,
		DelayMean:   15 * time.Millisecond,
		DelayStdDev: 10 * time.Millisecond,
	}
	fmt.Println("requirements: detect within 2s; at most 1 wrong suspicion per hour")
	fmt.Printf("network:      %.0f%% loss, delay %v ± %v\n\n",
		netStats.LossProb*100, netStats.DelayMean, netStats.DelayStdDev)

	params, err := chen.Configure(req, netStats)
	if err != nil {
		panic(err)
	}
	fmt.Printf("plan: heartbeat every %v, suspect %v past the expected arrival\n\n",
		params.Interval.Truncate(time.Millisecond), params.Alpha.Truncate(time.Millisecond))

	// Validate the plan against a simulated deployment: 2 hours of
	// operation, then a crash.
	s := sim.New(7)
	net := sim.NewNetwork(s, sim.Link{
		Delay: sim.RandomDelay{
			Dist: stats.Normal{Mu: netStats.DelayMean.Seconds(), Sigma: netStats.DelayStdDev.Seconds()},
			Min:  time.Millisecond,
		},
		Loss: sim.BernoulliLoss{P: netStats.LossProb},
	})
	start := s.Now()
	det := chen.New(start, params.Interval)
	crashAt := start.Add(2 * time.Hour)
	end := crashAt.Add(10 * time.Second)
	em := &sim.Emitter{
		Sim: s, Net: net, From: "p", To: "q",
		Interval: params.Interval,
		CrashAt:  crashAt,
		Until:    end,
		Sink:     det.Report,
	}
	em.Start()
	// Interpret the accrual level with the planned margin: D_T at α.
	bin := transform.NewConstantThreshold(transform.FromDetector(det), core.Level(params.Alpha.Seconds()))
	obs := trace.NewStatusObserver(core.Trusted)
	pr := &sim.Prober{
		Sim: s, Every: 50 * time.Millisecond, Until: end,
		Query: func(now time.Time) { obs.Observe(now, bin.Query(now)) },
	}
	pr.Start()
	s.RunUntil(end)

	rep, err := qos.Evaluate(qos.Input{
		Transitions: obs.Transitions(),
		Start:       start, End: end, CrashAt: crashAt,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("simulated 2h of operation plus a crash:")
	fmt.Printf("  wrong suspicions:       %d (budget allowed %d)\n",
		rep.STransitions, int(2*time.Hour/req.MinMistakeRecurrence)+1)
	fmt.Printf("  mistake recurrence:     %v (required >= %v)\n",
		orInf(rep.MeanMistakeRecurrence()), req.MinMistakeRecurrence)
	fmt.Printf("  detection time:         %v (required <= %v, detected %v)\n",
		rep.TD.Truncate(time.Millisecond), req.MaxDetectionTime, rep.Detected)
	ok := rep.Detected && rep.TD <= req.MaxDetectionTime &&
		(rep.STransitions < 2 || rep.MeanMistakeRecurrence() >= req.MinMistakeRecurrence)
	fmt.Printf("\nplan verified: %v\n", ok)
}

func orInf(d time.Duration) string {
	if d == 0 {
		return "∞ (no repeated mistakes)"
	}
	return d.String()
}
