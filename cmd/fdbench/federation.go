package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/federation"
	"accrual/internal/service"
	"accrual/internal/simple"
	"accrual/internal/telemetry"
	"accrual/internal/transport"
)

// federationResult is the single BENCH_federation.json artifact: the
// AFG1 codec's per-frame cost on a populated registry plus a measured
// cross-peer crash-detection time over real loopback gossip.
type federationResult struct {
	Name string `json:"name"`
	// Encode side: one EncodeRound (registry walk, top-k selection,
	// group rollup, AFG1 framing) over Procs processes in Groups groups.
	Procs             int     `json:"procs"`
	Groups            int     `json:"groups"`
	TopK              int     `json:"top_k"`
	FrameBytes        int     `json:"frame_bytes"`
	EncodeNsPerOp     float64 `json:"encode_ns_per_op"`
	EncodeAllocsPerOp int64   `json:"encode_allocs_per_op"`
	// Decode side: one UnmarshalDigest of that frame with a warm
	// interner.
	DecodeNsPerOp     float64 `json:"decode_ns_per_op"`
	DecodeAllocsPerOp int64   `json:"decode_allocs_per_op"`
	// End-to-end: two gossiping peers on loopback, a worker heartbeating
	// only to the first; seconds from the worker stopping until the
	// second peer's merged view crosses the suspicion threshold.
	GossipIntervalMs      float64 `json:"gossip_interval_ms"`
	CrashThreshold        float64 `json:"crash_threshold"`
	CrashDetectionSeconds float64 `json:"crash_detection_seconds"`
	VisibilitySeconds     float64 `json:"visibility_seconds"`
}

const (
	fedBenchProcs  = 10000
	fedBenchGroups = 16
)

// fedBenchPeer builds a populated monitor + federation pair on a manual
// clock: fedBenchProcs processes spread over fedBenchGroups groups, all
// heartbeating once so every entry carries a live arrival stamp.
func fedBenchPeer() *federation.Federation {
	hub := telemetry.NewHub()
	clk := clock.NewManual(time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC))
	mon := service.NewMonitor(clk, func(_ string, start time.Time) core.Detector {
		return simple.New(start)
	}, service.WithTelemetry(hub), service.WithGroupFn(func(id string) string {
		return id[:len("grp-00")]
	}))
	arrived := mon.Now()
	for i := 0; i < fedBenchProcs; i++ {
		id := fmt.Sprintf("grp-%02d-proc-%05d", i%fedBenchGroups, i)
		if err := mon.Heartbeat(core.Heartbeat{From: id, Seq: 1, Arrived: arrived}); err != nil {
			panic(fmt.Sprintf("federation bench: register %s: %v", id, err))
		}
	}
	clk.Advance(3 * time.Second) // give the suspects non-zero levels and ages
	fed, err := federation.New(federation.Config{
		Self:    "bench",
		Monitor: mon,
		Hub:     hub,
		Clock:   clk,
	})
	if err != nil {
		panic(fmt.Sprintf("federation bench: %v", err))
	}
	return fed
}

// fedBenchFrame renders one representative AFG1 frame: the same shape
// EncodeRound emits for the benchmark registry (default top-k suspects,
// every group rollup).
func fedBenchFrame() []byte {
	// EncodeRound keeps its frame private; render an equivalent one.
	d := transport.Digest{
		Origin: "bench",
		Seq:    1,
		Sent:   time.Date(2005, 3, 22, 0, 0, 3, 0, time.UTC),
		Procs:  fedBenchProcs,
	}
	for i := 0; i < federation.DefaultTopK; i++ {
		d.Suspects = append(d.Suspects, transport.DigestSuspect{
			ID:    fmt.Sprintf("grp-%02d-proc-%05d", i%fedBenchGroups, i),
			Level: 3,
			Age:   3 * time.Second,
		})
	}
	for g := 0; g < fedBenchGroups; g++ {
		d.Groups = append(d.Groups, transport.DigestGroup{
			Group:  fmt.Sprintf("grp-%02d", g),
			Procs:  fedBenchProcs / fedBenchGroups,
			Impact: 3 * fedBenchProcs / fedBenchGroups,
			Max:    3,
		})
	}
	buf, err := transport.MarshalDigest(&d)
	if err != nil {
		panic(fmt.Sprintf("federation bench: %v", err))
	}
	return buf
}

// fedCrashDetection runs the cross-peer e2e on loopback: two gossiping
// daemons-in-miniature, a worker heartbeating only to the first, and a
// wall-clock stopwatch from the worker's crash until the second peer's
// merged view crosses the threshold. Also returns how long initial
// visibility took.
func fedCrashDetection(interval time.Duration, threshold float64) (visibility, detection time.Duration, err error) {
	type peer struct {
		mon *service.Monitor
		ln  *transport.Listener
		fed atomic.Pointer[federation.Federation]
	}
	names := []string{"alpha", "bravo"}
	peers := make([]*peer, len(names))
	for i, name := range names {
		p := &peer{}
		group := name
		p.mon = service.NewMonitor(clock.Wall{}, func(_ string, start time.Time) core.Detector {
			return simple.New(start)
		}, service.WithGroupFn(func(string) string { return group }))
		p.ln, err = transport.Listen("127.0.0.1:0", p.mon,
			transport.WithDigestHandler(func(d *transport.Digest, arrived time.Time) {
				if f := p.fed.Load(); f != nil {
					f.HandleDigest(d, arrived)
				}
			}))
		if err != nil {
			return 0, 0, err
		}
		defer p.ln.Close()
		peers[i] = p
	}
	for i, p := range peers {
		fed, ferr := federation.New(federation.Config{
			Self:     names[i],
			Peers:    []string{peers[1-i].ln.Addr().String()},
			Monitor:  p.mon,
			Interval: interval,
			Fanout:   1,
			Seed:     uint64(i + 1),
		})
		if ferr != nil {
			return 0, 0, ferr
		}
		p.fed.Store(fed)
		fed.Start()
		defer fed.Stop()
	}
	alpha, bravo := peers[0], peers[1]

	sender, err := transport.NewSender("worker-1", alpha.ln.Addr().String(), interval/2)
	if err != nil {
		return 0, 0, err
	}
	if err := sender.Start(); err != nil {
		return 0, 0, err
	}

	level := func() (float64, bool) {
		info := bravo.fed.Load().ClusterInfo()
		for _, s := range info.Suspects {
			if s.ID == "worker-1" {
				return s.Level, true
			}
		}
		return 0, false
	}
	wait := func(timeout time.Duration, cond func() bool) bool {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		return false
	}

	t0 := time.Now()
	if !wait(10*time.Second, func() bool { _, ok := level(); return ok }) {
		sender.Stop()
		return 0, 0, fmt.Errorf("worker never became visible on the remote peer")
	}
	visibility = time.Since(t0)

	sender.Stop()
	t1 := time.Now()
	if !wait(30*time.Second, func() bool { l, ok := level(); return ok && l > threshold }) {
		return visibility, 0, fmt.Errorf("crash never crossed threshold %v on the remote peer", threshold)
	}
	return visibility, time.Since(t1), nil
}

// runFederation measures the AFG1 codec and the loopback crash-detection
// e2e and writes BENCH_federation.json into outDir.
func runFederation(outDir string) error {
	fed := fedBenchPeer()
	frameBytes, err := fed.EncodeRound()
	if err != nil {
		return fmt.Errorf("federation bench: %w", err)
	}
	enc := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fed.EncodeRound(); err != nil {
				b.Fatal(err)
			}
		}
	})

	frame := fedBenchFrame()
	intern := transport.NewIDInterner()
	var d transport.Digest
	if err := transport.UnmarshalDigest(frame, &d, intern); err != nil {
		return fmt.Errorf("federation bench: %w", err)
	}
	dec := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := transport.UnmarshalDigest(frame, &d, intern); err != nil {
				b.Fatal(err)
			}
		}
	})

	const (
		gossipInterval = 20 * time.Millisecond
		threshold      = 0.5
	)
	visibility, detection, err := fedCrashDetection(gossipInterval, threshold)
	if err != nil {
		return fmt.Errorf("federation bench: %w", err)
	}

	res := federationResult{
		Name:                  "federation",
		Procs:                 fedBenchProcs,
		Groups:                fedBenchGroups,
		TopK:                  federation.DefaultTopK,
		FrameBytes:            frameBytes,
		EncodeNsPerOp:         float64(enc.T.Nanoseconds()) / float64(enc.N),
		EncodeAllocsPerOp:     enc.AllocsPerOp(),
		DecodeNsPerOp:         float64(dec.T.Nanoseconds()) / float64(dec.N),
		DecodeAllocsPerOp:     dec.AllocsPerOp(),
		GossipIntervalMs:      float64(gossipInterval.Microseconds()) / 1000,
		CrashThreshold:        threshold,
		CrashDetectionSeconds: detection.Seconds(),
		VisibilitySeconds:     visibility.Seconds(),
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(outDir, "BENCH_federation.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("federation: encode %.0f ns/op (%d B frame, %d allocs/op), decode %.0f ns/op (%d allocs/op), crash detected cross-peer in %.2fs -> %s\n",
		res.EncodeNsPerOp, res.FrameBytes, res.EncodeAllocsPerOp,
		res.DecodeNsPerOp, res.DecodeAllocsPerOp, res.CrashDetectionSeconds, path)
	return nil
}
