package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"accrual/internal/autotune"
	"accrual/internal/chen"
	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/faultinject"
	"accrual/internal/service"
	"accrual/internal/telemetry"
)

// autotuneResult is the single BENCH_autotune.json artifact: one
// closed-loop convergence sweep of the QoS autotuner over a lossy,
// jittery channel, with the suspicion-continuity bound checked at every
// applied retune.
type autotuneResult struct {
	Name string `json:"name"`
	// The scenario: Procs chen detectors heartbeating every IntervalMs,
	// through a faultinject plan dropping DropProb of the packets and
	// delaying DelayProb of them by up to MaxDelayMs.
	Procs      int     `json:"procs"`
	IntervalMs float64 `json:"interval_ms"`
	DropProb   float64 `json:"drop_prob"`
	DelayProb  float64 `json:"delay_prob"`
	MaxDelayMs float64 `json:"max_delay_ms"`
	// The operator targets handed to the controller.
	TargetTDMs  float64 `json:"target_td_ms"`
	TargetTMRMs float64 `json:"target_tmr_ms"`
	// MeasuredLoss is what the controller's last measurement saw.
	MeasuredLoss float64 `json:"measured_loss"`
	// Per-round trace of the sweep.
	Rounds []autotuneRound `json:"rounds"`
	// ConvergedRound is the first round whose probe detection time
	// landed within 15% of the target (0 = never).
	ConvergedRound int     `json:"converged_round"`
	FinalTDMs      float64 `json:"final_td_ms"`
	FinalTDError   float64 `json:"final_td_error"`
	// ContinuityMax is the largest |Δ suspicion| observed across any
	// process at any applied retune instant; ContinuityOK is that bound
	// checked against 1e-6.
	ContinuityMax float64 `json:"continuity_max"`
	ContinuityOK  bool    `json:"continuity_ok"`
}

type autotuneRound struct {
	Round         int     `json:"round"`
	ThresholdHigh float64 `json:"threshold_high"`
	WindowSize    int     `json:"window_size"`
	Trim          float64 `json:"trim"`
	Applied       bool    `json:"applied"`
	Clamped       bool    `json:"clamped"`
	// TDMs is the probe-crash detection time measured after this round's
	// knobs took effect; TDError its relative distance from the target.
	TDMs    float64 `json:"td_ms"`
	TDError float64 `json:"td_error"`
	// ContinuityMax is the largest |Δ suspicion| across the fleet at
	// this round's retune instant (0 when nothing was applied).
	ContinuityMax float64 `json:"continuity_max"`
}

// autotuneFleet drives a manual-clock chen fleet through a faultinject
// channel: every heartbeat is offered to the injector, which decides
// drop and delay deterministically.
type autotuneFleet struct {
	clk  *clock.Manual
	mon  *service.Monitor
	hub  *telemetry.Hub
	inj  *faultinject.Injector
	eta  time.Duration
	ids  []string
	seq  map[string]uint64
	dead map[string]bool
}

func newAutotuneFleet(procs int, eta time.Duration, faults faultinject.Faults) *autotuneFleet {
	f := &autotuneFleet{
		clk:  clock.NewManual(time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC)),
		hub:  telemetry.NewHub(),
		inj:  faultinject.New(faults, 1),
		eta:  eta,
		seq:  make(map[string]uint64),
		dead: make(map[string]bool),
	}
	f.mon = service.NewMonitor(f.clk, func(_ string, start time.Time) core.Detector {
		return chen.New(start, eta, chen.WithWindowSize(64))
	}, service.WithTelemetry(f.hub))
	for i := 0; i < procs; i++ {
		id := fmt.Sprintf("proc-%02d", i)
		f.ids = append(f.ids, id)
		if err := f.mon.Register(id); err != nil {
			panic(fmt.Sprintf("autotune bench: register %s: %v", id, err))
		}
	}
	return f
}

// autotunePayload is the stand-in heartbeat datagram offered to the
// fault injector; only the injector's drop/delay verdict is used.
var autotunePayload = make([]byte, 32)

// tick advances one heartbeat interval: every live process emits one
// beat through the fault injector (drop = lost, Delay = arrival
// jitter), and the QoS estimators sample the fleet twice.
func (f *autotuneFleet) tick() {
	f.clk.Advance(f.eta / 2)
	f.hub.QoS().Sample(f.mon)
	f.clk.Advance(f.eta / 2)
	now := f.clk.Now()
	for _, id := range f.ids {
		if f.dead[id] {
			continue
		}
		f.seq[id]++
		for _, pkt := range f.inj.Apply(autotunePayload) {
			if err := f.mon.Heartbeat(core.Heartbeat{From: id, Seq: f.seq[id], Arrived: now.Add(pkt.Delay)}); err != nil {
				panic(fmt.Sprintf("autotune bench: heartbeat %s: %v", id, err))
			}
			break // a duplicate delivery would be stale anyway
		}
	}
	f.hub.QoS().Sample(f.mon)
}

// crashProbe crashes one process, waits for the reference interpreter
// to suspect it, deregisters it and returns the recorded detection
// time (recovered from the cumulative statistics), then revives it.
func (f *autotuneFleet) crashProbe(id string, maxTicks int) time.Duration {
	f.dead[id] = true
	f.hub.QoS().MarkCrashed(id, f.clk.Now())
	for i := 0; i < maxTicks; i++ {
		f.tick()
		if est, ok := f.hub.QoS().Estimate(id); ok && est.Status == core.Suspected {
			break
		}
	}
	before, beforeMean, _ := f.hub.QoS().DetectionStats()
	f.mon.Deregister(id)
	after, afterMean, _ := f.hub.QoS().DetectionStats()
	var td time.Duration
	if after == before+1 {
		td = time.Duration(float64(afterMean)*float64(after) - float64(beforeMean)*float64(before))
	}
	f.dead[id] = false
	delete(f.seq, id)
	if err := f.mon.Register(id); err != nil {
		panic(fmt.Sprintf("autotune bench: re-register %s: %v", id, err))
	}
	return td
}

// suspicionSnapshot captures every process's level at the frozen manual
// clock instant, reusing dst.
func (f *autotuneFleet) suspicionSnapshot(dst map[string]float64) {
	for k := range dst {
		delete(dst, k)
	}
	f.mon.EachLevel(func(id string, lvl core.Level) {
		dst[id] = float64(lvl)
	})
}

// runAutotune executes the convergence sweep and writes
// BENCH_autotune.json. The acceptance bar mirrors the CI gate: the
// achieved detection time must land within 15% of the target within 10
// controller rounds under 30% injected loss, and no applied retune may
// move any suspicion level by more than 1e-6 at the retune instant.
func runAutotune(outDir string) error {
	const (
		procs    = 8
		rounds   = 10
		tolerate = 0.15
	)
	eta := 100 * time.Millisecond
	faults := faultinject.Faults{
		Drop:     0.3,
		Delay:    0.5,
		MaxDelay: 20 * time.Millisecond,
	}
	target := chen.QoS{
		MaxDetectionTime:     600 * time.Millisecond,
		MinMistakeRecurrence: 10 * time.Second,
	}

	f := newAutotuneFleet(procs, eta, faults)
	ctl, err := autotune.New(autotune.Config{
		Monitor:   f.mon,
		QoS:       f.hub.QoS(),
		Counters:  &f.hub.Autotune,
		Targets:   target,
		Detector:  autotune.DetectorChen,
		MinWindow: 16,
		MaxWindow: 256,
	})
	if err != nil {
		return fmt.Errorf("autotune bench: %w", err)
	}

	res := autotuneResult{
		Name:        "autotune",
		Procs:       procs,
		IntervalMs:  float64(eta) / float64(time.Millisecond),
		DropProb:    faults.Drop,
		DelayProb:   faults.Delay,
		MaxDelayMs:  float64(faults.MaxDelay) / float64(time.Millisecond),
		TargetTDMs:  float64(target.MaxDetectionTime) / float64(time.Millisecond),
		TargetTMRMs: float64(target.MinMistakeRecurrence) / float64(time.Millisecond),
	}

	// Warm up the estimator windows before the first round.
	for i := 0; i < 100; i++ {
		f.tick()
	}

	before := make(map[string]float64, procs)
	after := make(map[string]float64, procs)
	targetTD := float64(target.MaxDetectionTime)
	for round := 1; round <= rounds; round++ {
		// Continuity check brackets the applied retune: the manual clock
		// is frozen across Round, so any level shift is the retune's.
		f.suspicionSnapshot(before)
		plan := ctl.Round()
		f.suspicionSnapshot(after)
		var contMax float64
		if plan.Applied {
			for id, b := range before {
				if d := math.Abs(after[id] - b); d > contMax {
					contMax = d
				}
			}
		}
		if contMax > res.ContinuityMax {
			res.ContinuityMax = contMax
		}

		// Traffic, then a probe crash to measure the achieved T_D with
		// this round's knobs (and feed the controller's feedback term).
		for i := 0; i < 30; i++ {
			f.tick()
		}
		td := f.crashProbe(f.ids[round%len(f.ids)], 50)
		for i := 0; i < 20; i++ {
			f.tick()
		}

		tdErr := math.Abs(float64(td)-targetTD) / targetTD
		res.Rounds = append(res.Rounds, autotuneRound{
			Round:         round,
			ThresholdHigh: plan.Proposed.ThresholdHigh,
			WindowSize:    plan.Proposed.WindowSize,
			Trim:          plan.Trim,
			Applied:       plan.Applied,
			Clamped:       plan.Clamped,
			TDMs:          float64(td) / float64(time.Millisecond),
			TDError:       tdErr,
			ContinuityMax: contMax,
		})
		res.FinalTDMs = float64(td) / float64(time.Millisecond)
		res.FinalTDError = tdErr
		if res.ConvergedRound == 0 && tdErr <= tolerate {
			res.ConvergedRound = round
		}
	}
	res.MeasuredLoss = ctl.Plan().Measured.LossProb
	res.ContinuityOK = res.ContinuityMax <= 1e-6

	if res.ConvergedRound == 0 || res.ConvergedRound > rounds {
		return fmt.Errorf("autotune bench: never within %.0f%% of target in %d rounds (final T_D %.1fms, target %.1fms)",
			tolerate*100, rounds, res.FinalTDMs, res.TargetTDMs)
	}
	if !res.ContinuityOK {
		return fmt.Errorf("autotune bench: suspicion continuity violated: max |Δ| = %g > 1e-6", res.ContinuityMax)
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	path := filepath.Join(outDir, "BENCH_autotune.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("autotune: converged round %d/%d, final T_D %.1fms (target %.1fms, err %.1f%%), loss %.1f%%, continuity max %.2g -> %s\n",
		res.ConvergedRound, rounds, res.FinalTDMs, res.TargetTDMs, res.FinalTDError*100,
		res.MeasuredLoss*100, res.ContinuityMax, path)
	return nil
}
