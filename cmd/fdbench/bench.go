package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/service"
	"accrual/internal/simple"
	"accrual/internal/telemetry"
	"accrual/internal/transport"
)

// benchResult is the machine-readable record one micro-benchmark emits,
// written to BENCH_<name>.json. The format is documented in README.md
// and consumed by CI's fdbench smoke job.
type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Extra carries benchmark-specific metrics reported via
	// b.ReportMetric (e.g. the batch bench's beats/frame).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// benchmarks maps -bench names to the functions testing.Benchmark runs.
// All of them exercise the telemetry-instrumented paths, so the emitted
// numbers are the observable daemon's, not an uninstrumented ideal's.
// "scrape" is handled separately by runBenchmarks: it sweeps over the
// -procs registry sizes.
var benchmarks = map[string]func(*testing.B){
	"ingest": benchIngest,
	"query":  benchQuery,
	"batch":  benchBatch,
}

func benchMonitor() (*service.Monitor, *telemetry.Hub) {
	hub := telemetry.NewHub()
	clk := clock.NewManual(time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC))
	mon := service.NewMonitor(clk, func(_ string, start time.Time) core.Detector {
		return simple.New(start)
	}, service.WithTelemetry(hub))
	return mon, hub
}

// benchIngest measures the instrumented heartbeat hot path with one
// goroutine per core, each hammering its own process — the same shape as
// the repo's BenchmarkIngestParallel.
func benchIngest(b *testing.B) {
	mon, _ := benchMonitor()
	arrived := mon.Now()
	var nextID atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		id := fmt.Sprintf("proc-%d", nextID.Add(1))
		var seq uint64
		for pb.Next() {
			seq++
			if err := mon.Heartbeat(core.Heartbeat{From: id, Seq: seq, Arrived: arrived}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchQuery measures the instrumented suspicion query path.
func benchQuery(b *testing.B) {
	mon, _ := benchMonitor()
	if err := mon.Heartbeat(core.Heartbeat{From: "p", Seq: 1, Arrived: mon.Now()}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := mon.Suspicion("p"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchBatch measures the userspace half of the coalesced heartbeat
// pipeline per beat: encode 32 beats into one AFB1 frame with a reused
// encoder, decode it with a warm id interner, and ingest the batch
// through Monitor.HeartbeatBatch (one shard-lock acquisition per shard
// per frame). Sockets are deliberately excluded so the number is
// deterministic and the zero-alloc gate in CI is meaningful; the
// syscall amortisation on top of this is measured by the repo's
// BenchmarkIngestBatch over real loopback sockets.
func benchBatch(b *testing.B) {
	mon, _ := benchMonitor()
	const batch = 32
	beats := make([]core.Heartbeat, batch)
	arrived := mon.Now()
	for i := range beats {
		beats[i] = core.Heartbeat{From: fmt.Sprintf("proc-%02d", i), Seq: 1, Arrived: arrived}
	}
	mon.HeartbeatBatch(beats) // register everyone up front
	enc := transport.NewBatchEncoder(batch)
	intern := transport.NewIDInterner()
	scratch := make([]core.Heartbeat, 0, batch)
	seq := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		seq++
		enc.Reset()
		for i := range beats {
			beats[i].Seq = seq
			if err := enc.Add(beats[i]); err != nil {
				b.Fatal(err)
			}
		}
		decoded, err := transport.UnmarshalBatch(enc.Bytes(), scratch[:0], intern)
		if err != nil {
			b.Fatal(err)
		}
		for i := range decoded {
			decoded[i].Arrived = arrived
		}
		if acc, rej := mon.HeartbeatBatch(decoded); acc != batch || rej != 0 {
			b.Fatalf("HeartbeatBatch = (%d, %d), want (%d, 0)", acc, rej, batch)
		}
	}
	b.ReportMetric(batch, "beats/frame")
}

// countWriter counts bytes and discards them — the scrape benchmark's
// sink, so the measured allocations are the render's own, not a
// response recorder's.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// benchScrapeN returns a benchmark measuring one full /v1/metrics render
// over a procs-process registry with live QoS estimates, via the API's
// exported WriteMetrics (the exact render the HTTP handler streams). A
// warm-up render primes the writer pool and header cache before the
// timer starts, so the loop measures the steady state a scraper sees.
func benchScrapeN(procs int) func(*testing.B) {
	return func(b *testing.B) {
		mon, hub := benchMonitor()
		arrived := mon.Now()
		for i := 0; i < procs; i++ {
			id := fmt.Sprintf("proc-%06d", i)
			if err := mon.Heartbeat(core.Heartbeat{From: id, Seq: 1, Arrived: arrived}); err != nil {
				b.Fatal(err)
			}
		}
		hub.QoS().Sample(mon)
		api := transport.NewAPI(mon, transport.WithAPITelemetry(hub))
		cw := &countWriter{}
		if err := api.WriteMetrics(cw); err != nil {
			b.Fatal(err)
		}
		exposition := cw.n
		cw.n = 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := api.WriteMetrics(cw); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(exposition), "exposition_bytes")
		b.ReportMetric(float64(procs), "procs")
	}
}

// writeBenchResult renders one testing.BenchmarkResult to
// BENCH_<artifact>.json in outDir and prints a one-line summary.
func writeBenchResult(artifact string, r testing.BenchmarkResult, outDir string) error {
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	res := benchResult{
		Name:        artifact,
		N:           r.N,
		NsPerOp:     nsPerOp,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if nsPerOp > 0 {
		res.OpsPerSec = 1e9 / nsPerOp
	}
	if len(r.Extra) > 0 {
		res.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			res.Extra[k] = v
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(outDir, "BENCH_"+artifact+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d iterations, %.1f ns/op, %.0f ops/sec, %d allocs/op -> %s\n",
		artifact, res.N, res.NsPerOp, res.OpsPerSec, res.AllocsPerOp, path)
	return nil
}

// runBenchmarks executes the named benchmark ("all" for every one
// except manyprocs, which is heavy enough to require an explicit ask)
// and writes BENCH_<name>.json files into outDir, printing a one-line
// summary per benchmark to stdout. The scrape benchmark runs once per
// entry of scrapeProcs; the canonical 100-process point lands in
// BENCH_scrape.json, other sizes in BENCH_scrape_<procs>.json. The
// manyprocs benchmark sweeps manySizes × {default, compact} into a
// single BENCH_manyprocs.json.
func runBenchmarks(name, outDir string, scrapeProcs, manySizes, walkSizes []int) error {
	var names []string
	switch {
	case name == "all":
		names = []string{"ingest", "query", "batch", "scrape"}
	case name == "scrape":
		names = []string{"scrape"}
	case name == "walk":
		names = []string{"walk"}
	case name == "manyprocs":
		names = []string{"manyprocs"}
	case name == "federation":
		names = []string{"federation"}
	case name == "autotune":
		names = []string{"autotune"}
	default:
		if _, ok := benchmarks[name]; !ok {
			return fmt.Errorf("unknown benchmark %q (want ingest, query, scrape, batch, walk, manyprocs, federation, autotune or all)", name)
		}
		names = []string{name}
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, n := range names {
		if n == "federation" {
			if err := runFederation(outDir); err != nil {
				return err
			}
			continue
		}
		if n == "autotune" {
			if err := runAutotune(outDir); err != nil {
				return err
			}
			continue
		}
		if n == "manyprocs" {
			if len(manySizes) == 0 {
				manySizes = []int{10000, 100000, 1000000}
			}
			if err := runManyprocs(manySizes, outDir); err != nil {
				return err
			}
			continue
		}
		if n == "walk" {
			if len(walkSizes) == 0 {
				walkSizes = []int{10000, 100000, 1000000}
			}
			if err := runWalk(walkSizes, outDir); err != nil {
				return err
			}
			continue
		}
		if n == "scrape" {
			if len(scrapeProcs) == 0 {
				scrapeProcs = []int{100}
			}
			for _, procs := range scrapeProcs {
				artifact := "scrape"
				if procs != 100 {
					artifact = fmt.Sprintf("scrape_%d", procs)
				}
				if err := writeBenchResult(artifact, testing.Benchmark(benchScrapeN(procs)), outDir); err != nil {
					return err
				}
			}
			continue
		}
		if err := writeBenchResult(n, testing.Benchmark(benchmarks[n]), outDir); err != nil {
			return err
		}
	}
	return nil
}
