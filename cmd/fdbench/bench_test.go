package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchJSONArtifact runs the query micro-benchmark through the CLI
// path and validates the BENCH_<name>.json contract CI relies on.
func TestBenchJSONArtifact(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "nested") // -bench-out may not exist yet
	if code := run([]string{"-bench", "query", "-bench-out", out}); code != 0 {
		t.Fatalf("bench exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(out, "BENCH_query.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, data)
	}
	if res.Name != "query" || res.N <= 0 || res.NsPerOp <= 0 || res.OpsPerSec <= 0 {
		t.Errorf("implausible result: %+v", res)
	}
	if res.AllocsPerOp != 0 {
		t.Errorf("instrumented query path allocates: %d allocs/op", res.AllocsPerOp)
	}
}

func TestBenchUnknownName(t *testing.T) {
	if code := run([]string{"-bench", "frobnicate"}); code != 2 {
		t.Errorf("unknown bench exit = %d, want 2", code)
	}
}

// TestBenchScrapeSweep runs the scrape benchmark over two -procs sizes
// and validates the per-size artifact contract: the canonical 100-proc
// point lands in BENCH_scrape.json, other sizes in
// BENCH_scrape_<n>.json, all with zero allocations and an
// exposition_bytes extra that grows with the registry.
func TestBenchScrapeSweep(t *testing.T) {
	dir := t.TempDir()
	if code := run([]string{"-bench", "scrape", "-procs", "100,500", "-bench-out", dir}); code != 0 {
		t.Fatalf("bench exit = %d", code)
	}
	load := func(name string) benchResult {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var res benchResult
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatalf("%s is not valid JSON: %v", name, err)
		}
		return res
	}
	small := load("BENCH_scrape.json")
	big := load("BENCH_scrape_500.json")
	for _, res := range []benchResult{small, big} {
		if res.N <= 0 || res.NsPerOp <= 0 {
			t.Errorf("implausible result: %+v", res)
		}
		// Under race sync.Pool deliberately bypasses its caches, so the
		// pooled scrape render's allocation budget is not meaningful
		// there; the non-race CI gate still enforces it.
		if !raceEnabled && res.AllocsPerOp != 0 {
			t.Errorf("%s: scrape render allocates: %d allocs/op", res.Name, res.AllocsPerOp)
		}
	}
	if small.Extra["procs"] != 100 || big.Extra["procs"] != 500 {
		t.Errorf("procs extras = %v / %v", small.Extra, big.Extra)
	}
	if small.Extra["exposition_bytes"] <= 0 ||
		big.Extra["exposition_bytes"] <= small.Extra["exposition_bytes"] {
		t.Errorf("exposition_bytes did not grow: %v -> %v",
			small.Extra["exposition_bytes"], big.Extra["exposition_bytes"])
	}
}

func TestParseProcs(t *testing.T) {
	if got, err := parseProcs("100, 10000,100000"); err != nil ||
		len(got) != 3 || got[0] != 100 || got[1] != 10000 || got[2] != 100000 {
		t.Errorf("parseProcs = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-5", "x", "100,,"} {
		if _, err := parseProcs(bad); (bad == "100,,") != (err == nil) {
			// "100,," parses (empty fields skipped); the rest must fail.
			t.Errorf("parseProcs(%q) err = %v", bad, err)
		}
	}
}
