package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchJSONArtifact runs the query micro-benchmark through the CLI
// path and validates the BENCH_<name>.json contract CI relies on.
func TestBenchJSONArtifact(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "nested") // -bench-out may not exist yet
	if code := run([]string{"-bench", "query", "-bench-out", out}); code != 0 {
		t.Fatalf("bench exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(out, "BENCH_query.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, data)
	}
	if res.Name != "query" || res.N <= 0 || res.NsPerOp <= 0 || res.OpsPerSec <= 0 {
		t.Errorf("implausible result: %+v", res)
	}
	if res.AllocsPerOp != 0 {
		t.Errorf("instrumented query path allocates: %d allocs/op", res.AllocsPerOp)
	}
}

func TestBenchUnknownName(t *testing.T) {
	if code := run([]string{"-bench", "frobnicate"}); code != 2 {
		t.Errorf("unknown bench exit = %d, want 2", code)
	}
}
