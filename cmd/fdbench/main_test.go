package main

import (
	"testing"
	"time"

	"accrual/internal/core"
	"accrual/internal/sim"
	"accrual/internal/simple"
)

func TestRunUnknownSweep(t *testing.T) {
	if code := run([]string{"-sweep", "bogus"}); code != 2 {
		t.Errorf("unknown sweep exit code = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code != 2 {
		t.Errorf("bad flag exit code = %d, want 2", code)
	}
}

func TestMetricsAtDetection(t *testing.T) {
	det := simple.New(sim.Epoch)
	res := runPair(5, det, 100*time.Millisecond, sim.NoLoss{}, 10*time.Second, 20*time.Second)
	if res.crashAt.IsZero() {
		t.Fatal("crash not recorded")
	}
	td, detected, lam := metricsAt(res, core.Level(1))
	if !detected {
		t.Fatal("crash not detected")
	}
	if td <= 0 || td > 2*time.Second {
		t.Errorf("TD = %v", td)
	}
	if lam != 0 {
		t.Errorf("mistake rate on a clean channel = %v, want 0", lam)
	}
}

func TestMetricsAtAccuracyOnly(t *testing.T) {
	det := simple.New(sim.Epoch)
	res := runPair(6, det, 100*time.Millisecond, sim.BernoulliLoss{P: 0.3}, 0, time.Minute)
	_, detected, lam := metricsAt(res, core.Level(0.15))
	if detected {
		t.Error("no crash, nothing to detect")
	}
	if lam <= 0 {
		t.Error("30% loss at a hair-trigger threshold must cause mistakes")
	}
}

func TestSweepsRun(t *testing.T) {
	// The sweeps print to stdout; this just exercises them end to end.
	if testing.Short() {
		t.Skip("sweeps skipped in -short mode")
	}
	for _, sweep := range []string{"threshold", "window", "loss", "interval", "gst"} {
		if code := run([]string{"-sweep", sweep, "-seed", "7"}); code != 0 {
			t.Errorf("sweep %s exit code = %d", sweep, code)
		}
	}
}
