package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchAutotune runs the convergence sweep through the CLI path and
// validates the BENCH_autotune.json contract: runAutotune itself fails
// the run unless the achieved T_D lands within 15% of the target within
// 10 rounds with suspicion continuity preserved, so a zero exit already
// implies the acceptance bar; the assertions below pin the artifact
// shape CI archives.
func TestBenchAutotune(t *testing.T) {
	dir := t.TempDir()
	if code := run([]string{"-bench", "autotune", "-bench-out", dir}); code != 0 {
		t.Fatalf("bench exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_autotune.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res autotuneResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, data)
	}
	if res.Name != "autotune" || len(res.Rounds) != 10 {
		t.Errorf("implausible result: name %q, %d rounds", res.Name, len(res.Rounds))
	}
	if res.ConvergedRound < 1 || res.ConvergedRound > 10 {
		t.Errorf("converged_round = %d, want 1..10", res.ConvergedRound)
	}
	if res.FinalTDError > 0.15 {
		t.Errorf("final_td_error = %.3f, want <= 0.15", res.FinalTDError)
	}
	if !res.ContinuityOK || res.ContinuityMax > 1e-6 {
		t.Errorf("continuity: ok=%v max=%g, want ok within 1e-6", res.ContinuityOK, res.ContinuityMax)
	}
	if res.MeasuredLoss < 0.2 || res.MeasuredLoss > 0.4 {
		t.Errorf("measured_loss = %.3f, want ≈0.3", res.MeasuredLoss)
	}
	// The sweep is deterministic (seeded faults, virtual time): the
	// committed bench/BENCH_autotune.json is this same run.
	applied := 0
	for _, r := range res.Rounds {
		if r.Applied {
			applied++
		}
	}
	if applied == 0 {
		t.Error("no round applied an update")
	}
}
