package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/phi"
	"accrual/internal/service"
	"accrual/internal/telemetry"
	"accrual/internal/transport/intern"
)

// manyprocsPoint is one cell of the membership-scale sweep: a registry
// size crossed with a memory profile, measured on the real service
// stack (interned ids, slab registry, φ detectors with profile-sized
// windows, telemetry on).
type manyprocsPoint struct {
	Procs   int    `json:"procs"`
	Profile string `json:"profile"`
	Shards  int    `json:"shards"`
	Window  int    `json:"window"`
	// NsPerBeat is the steady-state cost of one ingested heartbeat
	// under a parallel hammer that also queries suspicion levels.
	NsPerBeat float64 `json:"ns_per_beat"`
	// HeapBytesPerProc is the marginal live-heap cost of one monitored
	// process: (heap after registration - heap before) / procs, after
	// double GC on both sides. Id string bytes are excluded (they are
	// generated before the baseline and shared with the caller).
	HeapBytesPerProc float64 `json:"heap_bytes_per_proc"`
	// RSSBytes is the process resident set after registration.
	RSSBytes int64 `json:"rss_bytes"`
	// RSSBytesPerProc is RSSBytes / procs: what one monitored process
	// costs in resident memory at this scale, runtime baseline
	// amortised over the membership.
	RSSBytesPerProc float64 `json:"rss_bytes_per_proc"`
}

// manyprocsResult is the single BENCH_manyprocs.json artifact: the full
// size × profile matrix, so the scaling curve 10k → 100k → 1M is one
// committed file.
type manyprocsResult struct {
	Name     string           `json:"name"`
	Detector string           `json:"detector"`
	Points   []manyprocsPoint `json:"points"`
}

// readRSS returns the resident set size in bytes from /proc/self/statm,
// or 0 where that interface does not exist.
func readRSS() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	var size, resident int64
	if _, err := fmt.Sscan(string(data), &size, &resident); err != nil {
		return 0
	}
	return resident * int64(os.Getpagesize())
}

// manyprocsIDs builds the id universe once per size, outside the heap
// measurement window, so the registry cost measured is the monitor's
// own structures rather than the caller's key strings.
func manyprocsIDs(procs int) []string {
	ids := make([]string, procs)
	for i := range ids {
		ids[i] = fmt.Sprintf("proc-%07d", i)
	}
	return ids
}

// runManyprocsPoint registers procs processes under the given profile
// and measures per-process memory and per-beat ingest cost.
func runManyprocsPoint(ids []string, profile service.Profile) manyprocsPoint {
	procs := len(ids)
	const interval = 100 * time.Millisecond
	window := profile.EstimatorWindow(200)

	// Settle the heap so the registration delta is the registry's own.
	debug.FreeOSMemory()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	hub := telemetry.NewHub()
	clk := clock.NewManual(time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC))
	table := intern.New(intern.WithCapacity(procs + 1))
	mon := service.NewMonitor(clk, func(_ string, start time.Time) core.Detector {
		return phi.New(start, phi.WithBootstrap(interval, interval/4), phi.WithWindowSize(window))
	}, service.WithTelemetry(hub), service.WithProfile(profile), service.WithInterner(table))

	arrived := mon.Now()
	for i, id := range ids {
		if err := mon.Heartbeat(core.Heartbeat{From: id, Seq: 1, Arrived: arrived}); err != nil {
			panic(fmt.Sprintf("manyprocs: register %s: %v", ids[i], err))
		}
	}

	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	rss := readRSS()

	// Parallel hammer: every worker owns a contiguous id range, beats
	// it for enough rounds to total ~2M heartbeats, and queries the
	// suspicion level every 8th beat — ingest and read paths together,
	// the shape a loaded daemon actually runs.
	rounds := 2
	if procs < 1_000_000 {
		rounds = (2_000_000 + procs - 1) / procs
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > procs {
		workers = procs
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		lo := procs * w / workers
		hi := procs * (w + 1) / workers
		wg.Add(1)
		go func(own []string) {
			defer wg.Done()
			beat := 0
			for r := 0; r < rounds; r++ {
				seq := uint64(2 + r)
				for _, id := range own {
					if err := mon.Heartbeat(core.Heartbeat{From: id, Seq: seq, Arrived: arrived}); err != nil {
						panic(fmt.Sprintf("manyprocs: beat %s: %v", id, err))
					}
					if beat%8 == 0 {
						if _, err := mon.Suspicion(id); err != nil {
							panic(fmt.Sprintf("manyprocs: query %s: %v", id, err))
						}
					}
					beat++
				}
			}
		}(ids[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	totalBeats := procs * rounds

	pt := manyprocsPoint{
		Procs:     procs,
		Profile:   profile.String(),
		Shards:    mon.ShardCount(),
		Window:    window,
		NsPerBeat: float64(elapsed.Nanoseconds()) / float64(totalBeats),
		RSSBytes:  rss,
	}
	if heapDelta := int64(after.HeapAlloc) - int64(before.HeapAlloc); heapDelta > 0 {
		pt.HeapBytesPerProc = float64(heapDelta) / float64(procs)
	}
	if rss > 0 {
		pt.RSSBytesPerProc = float64(rss) / float64(procs)
	}
	runtime.KeepAlive(mon)
	return pt
}

// runManyprocs sweeps registry sizes crossed with the Default and
// Compact profiles and writes the whole curve to
// BENCH_manyprocs.json in outDir.
func runManyprocs(sizes []int, outDir string) error {
	res := manyprocsResult{Name: "manyprocs", Detector: "phi"}
	for _, procs := range sizes {
		ids := manyprocsIDs(procs)
		for _, profile := range []service.Profile{service.ProfileDefault, service.ProfileCompact} {
			pt := runManyprocsPoint(ids, profile)
			res.Points = append(res.Points, pt)
			fmt.Printf("manyprocs: procs=%d profile=%s shards=%d window=%d %.1f ns/beat, %.1f heap B/proc, %.1f rss B/proc\n",
				pt.Procs, pt.Profile, pt.Shards, pt.Window, pt.NsPerBeat, pt.HeapBytesPerProc, pt.RSSBytesPerProc)
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(outDir, "BENCH_manyprocs.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("manyprocs: %d points -> %s\n", len(res.Points), path)
	return nil
}
