// Command fdbench runs parameter sweeps over the failure detectors and
// prints CSV series suitable for plotting — the finer-grained companion
// to fdsim's tables.
//
// Sweeps:
//
//	threshold  φ threshold vs detection time and mistake rate (E1 curve)
//	window     φ estimation-window size vs detection time and mistakes
//	loss       heartbeat loss rate vs mistake rate per detector
//	interval   heartbeat interval vs detection time at a fixed threshold
//	gst        windowed mistake rate across a global stabilisation time
//	batch      sender coalescing window vs detection time and mistakes
//	           (the latency cost of batched heartbeat transport)
//
// Usage:
//
//	fdbench -sweep threshold [-seed 42]
//	fdbench -bench ingest|query|scrape|all [-bench-out DIR] [-procs 100,10000]
//
// With -bench, fdbench runs a hot-path micro-benchmark through
// testing.Benchmark and writes a machine-readable BENCH_<name>.json
// (ops/sec, ns/op, allocs/op; format in README.md) into -bench-out —
// the artifact CI archives on every run. The scrape benchmark sweeps
// the -procs registry sizes (comma-separated), writing one artifact per
// size: BENCH_scrape.json for the canonical 100-process point,
// BENCH_scrape_<n>.json for the others.
//
// The manyprocs benchmark is the membership-scale sweep: for each
// -manyprocs-sizes registry size crossed with the Default and Compact
// memory profiles it registers that many processes on the real service
// stack, then records ns/beat under a parallel hammer and resident
// bytes per process into a single BENCH_manyprocs.json. It is not part
// of "all" — a 1M-process point deliberately needs an explicit ask.
//
// The walk benchmark measures the lock-free evaluation plane: for each
// -walk-sizes registry size it times one full-fleet pass through every
// snapshot read path — EachLevel, EachLevelParallel, TopK(64) and
// EachInfo — and writes the size × path matrix to a single
// BENCH_walk.json (ns per pass, ns per process, allocs). The 1M point
// makes it too heavy for "all"; CI runs it capped at 100k.
//
// The federation benchmark measures the gossip plane: AFG1 digest
// encode (one EncodeRound over a 10k-process registry) and decode
// ns/op, plus a measured cross-peer crash-detection time over two real
// gossiping peers on loopback, written to BENCH_federation.json. Like
// manyprocs it spins real sockets and so is not part of "all".
//
// The autotune benchmark closes the QoS loop: a manual-clock chen fleet
// behind a faultinject channel (30% loss, delay jitter) is steered by
// the internal/autotune controller toward a detection-time target, and
// the per-round convergence trace — achieved T_D versus target, knob
// positions, and the suspicion-continuity bound at every applied
// retune — is written to BENCH_autotune.json. The run fails unless the
// achieved T_D lands within 15% of the target within 10 rounds with
// continuity preserved. Deterministic (seeded faults, virtual time), so
// it is CI-gateable, but it is a convergence check rather than a
// micro-benchmark and so is not part of "all".
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"time"

	"accrual/internal/chen"
	"accrual/internal/core"
	"accrual/internal/kappa"
	"accrual/internal/phi"
	"accrual/internal/qos"
	"accrual/internal/sim"
	"accrual/internal/simple"
	"accrual/internal/stats"
	"accrual/internal/trace"
	"accrual/internal/transform"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fdbench", flag.ContinueOnError)
	var (
		sweep    = fs.String("sweep", "threshold", "sweep to run: threshold, window, loss, interval, gst, batch")
		seed     = fs.Uint64("seed", 42, "base random seed")
		bench    = fs.String("bench", "", "run a micro-benchmark instead of a sweep: ingest, query, scrape, batch, walk, manyprocs, federation, autotune or all")
		benchOut = fs.String("bench-out", ".", "directory for BENCH_<name>.json results")
		procs    = fs.String("procs", "100", "comma-separated registry sizes for the scrape benchmark")
		manySz   = fs.String("manyprocs-sizes", "10000,100000,1000000", "comma-separated registry sizes for the manyprocs benchmark")
		walkSz   = fs.String("walk-sizes", "10000,100000,1000000", "comma-separated registry sizes for the walk benchmark")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *bench != "" {
		sizes, err := parseProcs(*procs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdbench: %v\n", err)
			return 2
		}
		manySizes, err := parseProcs(*manySz)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdbench: %v\n", err)
			return 2
		}
		walkSizes, err := parseProcs(*walkSz)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdbench: %v\n", err)
			return 2
		}
		if err := runBenchmarks(*bench, *benchOut, sizes, manySizes, walkSizes); err != nil {
			fmt.Fprintf(os.Stderr, "fdbench: %v\n", err)
			return 2
		}
		return 0
	}
	switch *sweep {
	case "threshold":
		sweepThreshold(*seed)
	case "window":
		sweepWindow(*seed)
	case "loss":
		sweepLoss(*seed)
	case "interval":
		sweepInterval(*seed)
	case "gst":
		sweepGST(*seed)
	case "batch":
		sweepBatch(*seed)
	default:
		fmt.Fprintf(os.Stderr, "fdbench: unknown sweep %q\n", *sweep)
		return 2
	}
	return 0
}

// parseProcs parses the -procs comma list into positive registry sizes.
func parseProcs(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -procs entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-procs is empty")
	}
	return out, nil
}

const hbInterval = 100 * time.Millisecond

type runResult struct {
	history []core.QueryRecord
	start   time.Time
	end     time.Time
	crashAt time.Time
}

// runPair is a local copy of the experiment harness's pair runner with
// explicit knobs for the sweeps.
func runPair(seed uint64, det core.Detector, interval time.Duration, loss sim.LossModel,
	crashAfter, horizon time.Duration) runResult {
	delay := sim.RandomDelay{Dist: stats.Normal{Mu: 0.010, Sigma: 0.005}, Min: time.Millisecond}
	return runPairLink(seed, det, interval, delay, loss, crashAfter, horizon)
}

// runPairLink is runPair with the link delay model exposed, for sweeps
// that perturb delivery latency itself (the batch sweep).
func runPairLink(seed uint64, det core.Detector, interval time.Duration, delay sim.DelayModel,
	loss sim.LossModel, crashAfter, horizon time.Duration) runResult {
	s := sim.New(seed)
	net := sim.NewNetwork(s, sim.Link{
		Delay: delay,
		Loss:  loss,
	})
	start := s.Now()
	var crashAt time.Time
	if crashAfter > 0 {
		crashAt = start.Add(crashAfter)
	}
	end := start.Add(horizon)
	em := &sim.Emitter{
		Sim: s, Net: net, From: "p", To: "q",
		Interval: interval,
		Jitter:   stats.Normal{Mu: 0, Sigma: 0.010},
		CrashAt:  crashAt,
		Until:    end,
		Sink:     det.Report,
	}
	em.Start()
	res := runResult{start: start, end: end, crashAt: crashAt}
	pr := &sim.Prober{
		Sim: s, Every: 20 * time.Millisecond, Until: end,
		Query: func(now time.Time) {
			res.history = append(res.history, core.QueryRecord{At: now, Level: det.Suspicion(now)})
		},
	}
	pr.Start()
	s.RunUntil(end)
	return res
}

// metricsAt interprets a recorded run with a constant threshold.
func metricsAt(res runResult, threshold core.Level) (td time.Duration, detected bool, mistakesPerMin float64) {
	i := 0
	src := func(time.Time) core.Level {
		l := res.history[i].Level
		i++
		return l
	}
	obs := trace.NewStatusObserver(core.Trusted)
	b := transform.NewConstantThreshold(src, threshold)
	for _, rec := range res.history {
		obs.Observe(rec.At, b.Query(rec.At))
	}
	trs := obs.Transitions()
	// Detection time: last transition must be an S-transition.
	if !res.crashAt.IsZero() {
		if last, ok := obs.LastTransition(); ok && last.Kind == core.STransition {
			detected = true
			if last.At.After(res.crashAt) {
				td = last.At.Sub(res.crashAt)
			}
		}
	}
	// Mistake rate over the pre-crash (or full) window.
	accEnd := res.end
	if !res.crashAt.IsZero() {
		accEnd = res.crashAt
	}
	s := 0
	for _, tr := range trs {
		if tr.Kind == core.STransition && tr.At.Before(accEnd) {
			s++
		}
	}
	mins := accEnd.Sub(res.start).Minutes()
	if mins > 0 {
		mistakesPerMin = float64(s) / mins
	}
	return td, detected, mistakesPerMin
}

func phiDet(start time.Time) core.Detector {
	return phi.New(start, phi.WithBootstrap(hbInterval, hbInterval/4))
}

func sweepThreshold(seed uint64) {
	fmt.Println("threshold,td_ms,lambda_m_per_min")
	crash := runPair(seed, phiDet(sim.Epoch), hbInterval, sim.NoLoss{}, 60*time.Second, 90*time.Second)
	acc := runPair(seed+1, phiDet(sim.Epoch), hbInterval, sim.NoLoss{}, 0, 10*time.Minute)
	for th := 0.25; th <= 16; th *= 1.2 {
		td, ok, _ := metricsAt(crash, core.Level(th))
		_, _, lam := metricsAt(acc, core.Level(th))
		if !ok {
			continue
		}
		fmt.Printf("%.3f,%.1f,%.4f\n", th, float64(td.Microseconds())/1000, lam)
	}
}

func sweepWindow(seed uint64) {
	fmt.Println("window,td_ms,lambda_m_per_min")
	for _, w := range []int{10, 25, 50, 100, 200, 500, 1000} {
		mk := func(start time.Time) core.Detector {
			return phi.New(start, phi.WithWindowSize(w),
				phi.WithBootstrap(hbInterval, hbInterval/4))
		}
		crash := runPair(seed, mk(sim.Epoch), hbInterval, sim.NoLoss{}, 60*time.Second, 90*time.Second)
		acc := runPair(seed+1, mk(sim.Epoch), hbInterval, sim.NoLoss{}, 0, 10*time.Minute)
		td, ok, _ := metricsAt(crash, 3)
		_, _, lam := metricsAt(acc, 3)
		if !ok {
			continue
		}
		fmt.Printf("%d,%.1f,%.4f\n", w, float64(td.Microseconds())/1000, lam)
	}
}

func sweepLoss(seed uint64) {
	fmt.Println("loss_rate,detector,lambda_m_per_min")
	dets := []struct {
		name string
		mk   func(start time.Time) core.Detector
		th   core.Level
	}{
		{"simple", func(s time.Time) core.Detector { return simple.New(s) }, 0.5},
		{"chen", func(s time.Time) core.Detector { return chen.New(s, hbInterval) }, 0.4},
		{"phi", phiDet, 8},
		{"kappa", func(s time.Time) core.Detector { return kappa.New(s, kappa.PLater{}) }, 4},
	}
	for _, p := range []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2} {
		for _, d := range dets {
			acc := runPair(seed, d.mk(sim.Epoch), hbInterval,
				sim.BernoulliLoss{P: p}, 0, 10*time.Minute)
			_, _, lam := metricsAt(acc, d.th)
			fmt.Printf("%.2f,%s,%.4f\n", p, d.name, lam)
		}
	}
}

func sweepInterval(seed uint64) {
	fmt.Println("interval_ms,td_ms")
	for _, iv := range []time.Duration{
		20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 500 * time.Millisecond, time.Second,
	} {
		mk := phi.New(sim.Epoch, phi.WithBootstrap(iv, iv/4))
		crash := runPair(seed, mk, iv, sim.NoLoss{}, 60*time.Second, 90*time.Second)
		td, ok, _ := metricsAt(crash, 3)
		if !ok {
			continue
		}
		fmt.Printf("%d,%.1f\n", iv.Milliseconds(), float64(td.Microseconds())/1000)
	}
}

// coalesceDelay models sender-side batching on top of a base network
// delay: a beat collected into a pending batch waits somewhere between
// zero (the flush that sends it was already due) and the full flush
// window before it reaches the wire, uniformly spread across the window.
type coalesceDelay struct {
	base sim.DelayModel
	hold time.Duration
}

func (d coalesceDelay) Delay(rng *rand.Rand) time.Duration {
	dl := d.base.Delay(rng)
	if d.hold > 0 {
		dl += time.Duration(rng.Int64N(int64(d.hold) + 1))
	}
	return dl
}

// sweepBatch prints the latency cost of heartbeat coalescing: detection
// time and mistake rate of a φ detector as the sender's flush window
// (WithBatch maxDelay) grows from zero to multiple heartbeat intervals.
// The held beats arrive later and with more arrival-time spread, so both
// T_D and the estimator's variance pay for the saved syscalls — this
// curve is the quantitative form of the guidance in docs/TUNING.md.
func sweepBatch(seed uint64) {
	fmt.Println("flush_ms,td_ms,lambda_m_per_min")
	base := sim.RandomDelay{Dist: stats.Normal{Mu: 0.010, Sigma: 0.005}, Min: time.Millisecond}
	for _, flush := range []time.Duration{
		0, 10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	} {
		delay := coalesceDelay{base: base, hold: flush}
		crash := runPairLink(seed, phiDet(sim.Epoch), hbInterval, delay,
			sim.NoLoss{}, 60*time.Second, 90*time.Second)
		acc := runPairLink(seed+1, phiDet(sim.Epoch), hbInterval, delay,
			sim.NoLoss{}, 0, 10*time.Minute)
		td, ok, _ := metricsAt(crash, 3)
		_, _, lam := metricsAt(acc, 3)
		if !ok {
			continue
		}
		fmt.Printf("%d,%.1f,%.4f\n", flush.Milliseconds(), float64(td.Microseconds())/1000, lam)
	}
}

// sweepGST prints the windowed mistake rate of a φ detector across a
// partial-synchrony run: chaos (heavy loss, wild delays) before GST at
// t=120s, bounded behaviour after. The series shows λ_M collapsing once
// the model's bounds take hold — the empirical face of "eventually
// perfect".
func sweepGST(seed uint64) {
	fmt.Println("window_end_s,lambda_m_per_min,pa")
	s := sim.New(seed)
	gst := sim.Epoch.Add(120 * time.Second)
	net := sim.NewNetwork(s, sim.Link{
		Delay: sim.GSTDelay{
			Sim: s, GST: gst,
			Before: sim.RandomDelay{Dist: stats.Uniform{A: 0.01, B: 0.5}},
			After:  sim.RandomDelay{Dist: stats.Normal{Mu: 0.01, Sigma: 0.005}, Min: time.Millisecond},
		},
		Loss: sim.GSTLoss{Sim: s, GST: gst, Before: sim.BernoulliLoss{P: 0.5}},
	})
	start := s.Now()
	det := phiDet(start)
	end := start.Add(6 * time.Minute)
	em := &sim.Emitter{
		Sim: s, Net: net, From: "p", To: "q",
		Interval: hbInterval,
		Jitter:   stats.Normal{Mu: 0, Sigma: 0.01},
		Until:    end,
		Sink:     det.Report,
	}
	em.Start()
	bin := transform.NewConstantThreshold(transform.FromDetector(det), 2)
	obs := trace.NewStatusObserver(core.Trusted)
	pr := &sim.Prober{
		Sim: s, Every: 20 * time.Millisecond, Until: end,
		Query: func(now time.Time) { obs.Observe(now, bin.Query(now)) },
	}
	pr.Start()
	s.RunUntil(end)

	points, err := qos.Series(qos.Input{
		Transitions: obs.Transitions(), Start: start, End: end,
	}, 30*time.Second, 10*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdbench: %v\n", err)
		return
	}
	for _, p := range points {
		fmt.Printf("%.0f,%.3f,%.5f\n", p.At.Sub(start).Seconds(), p.LambdaM*60, p.PA)
	}
}
