package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/service"
	"accrual/internal/simple"
)

// walkPoint is one cell of the evaluation-plane sweep: a registry size
// crossed with one full-fleet read path. NsPerOp is one complete pass
// over the whole registry; NsPerProc is that divided by the membership,
// the number the ≥5× read-path speedup target is stated in.
type walkPoint struct {
	Procs       int     `json:"procs"`
	Path        string  `json:"path"`
	Shards      int     `json:"shards"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerProc   float64 `json:"ns_per_proc"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// walkBenchResult is the single BENCH_walk.json artifact: the full
// size × path matrix, so the sequential-vs-parallel scaling curve is
// one committed file.
type walkBenchResult struct {
	Name     string      `json:"name"`
	Detector string      `json:"detector"`
	Points   []walkPoint `json:"points"`
}

// walkMonitor registers procs processes and advances the clock so every
// entry carries a live eval snapshot — the steady state the walk paths
// read. Large registries get the 512-shard layout the membership-scale
// guidance prescribes, so parallel walks have enough segments to spread.
func walkMonitor(procs int) *service.Monitor {
	shards := 64
	if procs > 100_000 {
		shards = 512
	}
	clk := clock.NewManual(time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC))
	mon := service.NewMonitor(clk, func(_ string, start time.Time) core.Detector {
		return simple.New(start)
	}, service.WithShardCount(shards))
	arrived := mon.Now()
	for i := 0; i < procs; i++ {
		id := fmt.Sprintf("proc-%07d", i)
		if err := mon.Heartbeat(core.Heartbeat{From: id, Seq: 1, Arrived: arrived}); err != nil {
			panic(fmt.Sprintf("walk: register %s: %v", id, err))
		}
	}
	clk.Advance(time.Second)
	return mon
}

// walkBenchmarks returns the read-path benchmarks for one prepared
// monitor. Each path makes one full-fleet pass per op; the sink defeats
// dead-code elimination without allocating.
func walkBenchmarks(mon *service.Monitor) []struct {
	path string
	fn   func(*testing.B)
} {
	var sink atomic.Uint64
	levelFn := func(id string, lvl core.Level) { sink.Add(uint64(len(id))) }
	infoFn := func(info service.ProcessInfo) { sink.Add(uint64(len(info.ID))) }
	return []struct {
		path string
		fn   func(*testing.B)
	}{
		{"each_level", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mon.EachLevel(levelFn)
			}
		}},
		{"each_level_parallel", func(b *testing.B) {
			mon.EachLevelParallel(levelFn) // start the worker pool before the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mon.EachLevelParallel(levelFn)
			}
		}},
		{"top_k", func(b *testing.B) {
			dst := make([]service.RankedProcess, 0, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = mon.TopK(64, dst[:0])
			}
		}},
		{"each_info", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mon.EachInfo(infoFn)
			}
		}},
	}
}

// runWalk sweeps registry sizes across the four full-fleet read paths
// and writes the whole matrix to BENCH_walk.json in outDir.
func runWalk(sizes []int, outDir string) error {
	res := walkBenchResult{Name: "walk", Detector: "simple"}
	for _, procs := range sizes {
		mon := walkMonitor(procs)
		for _, wb := range walkBenchmarks(mon) {
			r := testing.Benchmark(wb.fn)
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			pt := walkPoint{
				Procs:       procs,
				Path:        wb.path,
				Shards:      mon.ShardCount(),
				NsPerOp:     nsPerOp,
				NsPerProc:   nsPerOp / float64(procs),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			res.Points = append(res.Points, pt)
			fmt.Printf("walk: procs=%d path=%s shards=%d %.0f ns/op, %.2f ns/proc, %d allocs/op\n",
				pt.Procs, pt.Path, pt.Shards, pt.NsPerOp, pt.NsPerProc, pt.AllocsPerOp)
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(outDir, "BENCH_walk.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("walk: %d points -> %s\n", len(res.Points), path)
	return nil
}
