// Command fdsim runs the reproduction experiments of EXPERIMENTS.md and
// prints their tables and claim checks.
//
// Usage:
//
//	fdsim -list
//	fdsim -exp E1 [-seed 42]
//	fdsim -all [-seed 42]
//
// Exit status is non-zero when any executed check fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"accrual/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fdsim", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "", "experiment id to run (E1..E13)")
		all    = fs.Bool("all", false, "run every experiment")
		list   = fs.Bool("list", false, "list experiments")
		seed   = fs.Uint64("seed", 42, "base random seed")
		format = fs.String("format", "text", "output format: text, csv, markdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	render, ok := renderers[*format]
	if !ok {
		fmt.Fprintf(os.Stderr, "fdsim: unknown format %q (want text, csv or markdown)\n", *format)
		return 2
	}

	reg := experiments.Registry()
	switch {
	case *list:
		for _, id := range experiments.IDs() {
			t := placeholderTitle(id, reg)
			fmt.Printf("%-4s %s\n", id, t)
		}
		return 0
	case *all:
		failed := 0
		for _, id := range experiments.IDs() {
			if !runOne(reg, id, *seed, render) {
				failed++
			}
			fmt.Println()
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "fdsim: %d experiment(s) with failing checks\n", failed)
			return 1
		}
		return 0
	case *exp != "":
		if _, ok := reg[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "fdsim: unknown experiment %q (use -list)\n", *exp)
			return 2
		}
		if !runOne(reg, *exp, *seed, render) {
			return 1
		}
		return 0
	default:
		fs.Usage()
		return 2
	}
}

var renderers = map[string]func(*experiments.Table, *os.File) error{
	"text":     func(t *experiments.Table, f *os.File) error { return t.Render(f) },
	"csv":      func(t *experiments.Table, f *os.File) error { return t.WriteCSV(f) },
	"markdown": func(t *experiments.Table, f *os.File) error { return t.WriteMarkdown(f) },
}

func runOne(reg map[string]experiments.Runner, id string, seed uint64,
	render func(*experiments.Table, *os.File) error) bool {
	table := reg[id](seed)
	if err := render(table, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fdsim: render %s: %v\n", id, err)
		return false
	}
	return table.Passed()
}

// placeholderTitle runs nothing: titles are static fields, so obtain them
// cheaply from a table literal per experiment would require running it.
// Instead keep a static description map in sync with the registry.
func placeholderTitle(id string, _ map[string]experiments.Runner) string {
	titles := map[string]string{
		"E1":  "threshold sweep over φ: detection time vs accuracy (Thm 1, Cor 2–3)",
		"E2":  "two-threshold interpreters D'_T with shared T0 (Thm 4, Cor 5–6)",
		"E3":  "Algorithm 1 accrual→binary over every §5 implementation (Lemmas 7–8)",
		"E4":  "Algorithm 2 binary→accrual over scripted ◇P histories (Lemmas 10–11)",
		"E5":  "Weak Accruement adversary vs compliant source (Appendix A.5)",
		"E6":  "detector comparison at matched detection time (§5 claims)",
		"E7":  "post-crash accruement rate vs ε/2Q (Equation 1)",
		"E8":  "φ threshold calibration vs 10^−Φ (§5.3)",
		"E9":  "one monitor, many interpreters: differentiated QoS (Figs 1–2, §4.4)",
		"E10": "consensus over accrual failure detection (§4 equivalence)",
		"E11": "Bag-of-Tasks cost-aware policy vs binary timeout (§1.3)",
		"E12": "micro-costs of monitoring and interpretation",
		"E13": "gossip-disseminated accrual detection at scale (extension)",
		"E14": "replicated log over accrual detection (extension)",
	}
	return titles[id]
}
