package main

import "testing"

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("-list exit code = %d", code)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// E4 is the cheapest fully deterministic experiment.
	if code := run([]string{"-exp", "E4"}); code != 0 {
		t.Errorf("-exp E4 exit code = %d", code)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if code := run([]string{"-exp", "E99"}); code != 2 {
		t.Errorf("unknown experiment exit code = %d, want 2", code)
	}
}

func TestRunNoArgs(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no-args exit code = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code != 2 {
		t.Errorf("bad flag exit code = %d, want 2", code)
	}
}

func TestTitlesCoverRegistry(t *testing.T) {
	// Every registered experiment needs a -list title.
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"} {
		if placeholderTitle(id, nil) == "" {
			t.Errorf("missing -list title for %s", id)
		}
	}
}
