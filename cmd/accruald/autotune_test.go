package main

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"accrual/internal/transport"
)

// TestDaemonAutotuneFlags covers the flag seam: -autotune without a
// detection-time target is a boot error, inverted QoS thresholds are a
// boot error (not a silent fallback), and a daemon booted with targets
// serves the tune endpoints.
func TestDaemonAutotuneFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-autotune", "-udp", "127.0.0.1:0", "-http", "127.0.0.1:0"}, nil); err == nil {
		t.Error("-autotune without -target-td should fail")
	}
	if err := run(ctx, []string{"-qos-high", "1", "-qos-low", "2", "-udp", "127.0.0.1:0", "-http", "127.0.0.1:0"}, nil); err == nil {
		t.Error("inverted -qos-high/-qos-low should fail")
	}
	if err := run(ctx, []string{"-autotune", "-target-td", "2s", "-autotune-step", "1.5", "-udp", "127.0.0.1:0", "-http", "256.0.0.1:bad"}, nil); err == nil {
		t.Error("bad HTTP address should still fail with autotune flags")
	}
}

// TestDaemonTuneEndpoint boots a daemon with a detection-time target
// (autotuner constructed, loop off), heartbeats it, and drives both
// tune verbs over HTTP.
func TestDaemonTuneEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time daemon test skipped in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan [2]string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-udp", "127.0.0.1:0", "-http", "127.0.0.1:0",
			"-detector", "chen", "-interval", "20ms",
			"-target-td", "200ms", "-log-transitions=false",
		}, ready)
	}()
	var addrs [2]string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	udpAddr, httpAddr := addrs[0], addrs[1]

	sender, err := transport.NewSender("node-1", udpAddr, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	defer sender.Stop()

	base := "http://" + httpAddr
	var plan transport.TunePlanResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("tune plan never became feasible")
		}
		resp, err := http.Get(base + "/v1/tune")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("GET /v1/tune = %d", resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&plan)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if plan.Feasible {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if plan.Measured.Procs != 1 {
		t.Errorf("measured procs = %d, want 1", plan.Measured.Procs)
	}

	resp, err := http.Post(base+"/v1/tune", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var applied transport.TunePlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&applied); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if applied.Round == 0 {
		t.Error("POST /v1/tune did not run a round")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
