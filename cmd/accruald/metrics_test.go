package main

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"accrual/internal/telemetry"
	"accrual/internal/transport"
)

// TestDaemonMetricsEndpoint boots the daemon with defaults (telemetry is
// always on in accruald), feeds it heartbeats over real UDP, and checks
// that /v1/metrics serves a parseable Prometheus exposition covering the
// counter, transport, and per-process gauge families.
func TestDaemonMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time daemon test skipped in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan [2]string, 1)
	done := make(chan error, 1)
	go func() {
		// Default -log-transitions stays on so the watcher is wired
		// into /v1/metrics.
		done <- run(ctx, []string{
			"-udp", "127.0.0.1:0", "-http", "127.0.0.1:0",
			"-interval", "20ms",
		}, ready)
	}()
	var addrs [2]string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	udpAddr, httpAddr := addrs[0], addrs[1]

	sender, err := transport.NewSender("metrics-node", udpAddr, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	defer sender.Stop()

	// Scrape until the node's heartbeats show up in the counters and
	// the watcher/sampler loops have published their first liveness
	// stamps (both tick on the 20ms -interval).
	url := "http://" + httpAddr + "/v1/metrics"
	deadline := time.Now().Add(5 * time.Second)
	var samples []telemetry.Sample
	for {
		if time.Now().After(deadline) {
			t.Fatal("metrics never reflected the heartbeating node")
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("GET /v1/metrics = %s", resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			resp.Body.Close()
			t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
		}
		samples, err = telemetry.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("exposition does not parse: %v", err)
		}
		if metricValue(samples, "accrual_heartbeats_ingested_total", "", "") > 0 &&
			metricValue(samples, "accrual_udp_heartbeats_delivered_total", "", "") > 0 &&
			metricValue(samples, "accrual_watcher_last_poll_timestamp_seconds", "", "") > 0 &&
			metricValue(samples, "accrual_sampler_last_sample_timestamp_seconds", "", "") > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	if got := metricValue(samples, "accrual_monitor_processes", "", ""); got != 1 {
		t.Errorf("accrual_monitor_processes = %v, want 1", got)
	}
	if got := metricValue(samples, telemetry.MetricSuspicionLevel, "proc", "metrics-node"); got < 0 {
		t.Errorf("no %s sample for metrics-node", telemetry.MetricSuspicionLevel)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// metricValue finds a sample by name (and optional single label match),
// returning -1 if absent.
func metricValue(samples []telemetry.Sample, name, labelName, labelValue string) float64 {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		if labelName != "" && s.Labels[labelName] != labelValue {
			continue
		}
		return s.Value
	}
	return -1
}
