// Command accruald is the failure-detection service daemon the paper
// advocates (§1, §7): it listens for UDP heartbeats from monitored
// processes and serves their raw suspicion levels over HTTP/JSON, leaving
// all interpretation to the querying applications.
//
// Usage:
//
//	accruald [-udp :7946] [-http :8080] [-detector phi] [-interval 1s]
//
// Monitored processes send heartbeats with `accrualctl beat` (or any
// client speaking the packet format of internal/transport). Applications
// query:
//
//	GET /v1/processes                  ranked suspicion levels
//	GET /v1/suspicion?id=node-1        one process's level
//	GET /v1/status?id=node-1&threshold=3   client-chosen interpretation
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"accrual/internal/chen"
	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/kappa"
	"accrual/internal/phi"
	"accrual/internal/service"
	"accrual/internal/simple"
	"accrual/internal/transport"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		log.Fatalf("accruald: %v", err)
	}
}

// run starts the daemon and blocks until ctx is cancelled or a component
// fails. When ready is non-nil it receives the bound UDP and HTTP
// addresses once both listeners are up (used by tests).
func run(ctx context.Context, args []string, ready chan<- [2]string) error {
	fs := flag.NewFlagSet("accruald", flag.ContinueOnError)
	var (
		udpAddr  = fs.String("udp", ":7946", "UDP address for incoming heartbeats")
		httpAddr = fs.String("http", ":8080", "HTTP address for the query API")
		detName  = fs.String("detector", "phi", "detector per process: phi, chen, kappa, simple")
		interval = fs.Duration("interval", time.Second, "expected heartbeat interval")
		logTrans = fs.Bool("log-transitions", true, "log S-/T-transitions observed by an internal Algorithm 1 view")
		history  = fs.Int("history", 600, "level samples kept per process for /v1/history (0 disables)")
		shards   = fs.Int("shards", 0, "monitor registry shard count, rounded up to a power of two (0 = default 64)")
		ingestWk = fs.Int("ingest-workers", runtime.GOMAXPROCS(0), "parallel heartbeat ingest goroutines (0 = ingest from the read loop)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	factory, err := detectorFactory(*detName, *interval)
	if err != nil {
		return err
	}
	var monOpts []service.MonitorOption
	if *shards > 0 {
		monOpts = append(monOpts, service.WithShardCount(*shards))
	}
	mon := service.NewMonitor(clock.Wall{}, factory, monOpts...)

	var lnOpts []transport.ListenerOption
	if *ingestWk > 0 {
		lnOpts = append(lnOpts, transport.WithIngestWorkers(*ingestWk))
	}
	listener, err := transport.Listen(*udpAddr, mon, lnOpts...)
	if err != nil {
		return err
	}
	defer listener.Close()
	log.Printf("heartbeat listener on %s (detector=%s interval=%v ingest-workers=%d)", listener.Addr(), *detName, *interval, *ingestWk)

	if *logTrans {
		// An internal observer application using the paper's
		// parameter-free Algorithm 1; purely informational — client
		// interpretations are independent of it.
		app := mon.NewApp("accruald-log", service.AdaptivePolicy(),
			service.WithTransitionHandler(func(proc string, tr core.Transition, st core.Status) {
				log.Printf("transition: %s -> %s", proc, st)
			}))
		w := service.Watch(app, *interval)
		defer w.Stop()
	}

	var apiOpts []transport.APIOption
	if *history > 0 {
		rec := service.NewRecorder(mon, *history)
		runner := service.StartRecorder(rec, *interval)
		defer runner.Stop()
		apiOpts = append(apiOpts, transport.WithRecorder(rec))
	}

	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *httpAddr, err)
	}
	srv := &http.Server{
		Handler:           transport.NewAPI(mon, apiOpts...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(httpLn) }()
	log.Printf("query API on %s", httpLn.Addr())
	if ready != nil {
		ready <- [2]string{listener.Addr().String(), httpLn.Addr().String()}
	}

	select {
	case <-ctx.Done():
		log.Print("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

func detectorFactory(name string, interval time.Duration) (service.Factory, error) {
	switch name {
	case "phi":
		return func(_ string, start time.Time) core.Detector {
			return phi.New(start, phi.WithBootstrap(interval, interval/4))
		}, nil
	case "chen":
		return func(_ string, start time.Time) core.Detector {
			return chen.New(start, interval)
		}, nil
	case "kappa":
		return func(_ string, start time.Time) core.Detector {
			return kappa.New(start, kappa.PLater{}, kappa.WithFixedInterval(interval))
		}, nil
	case "simple":
		return func(_ string, start time.Time) core.Detector {
			return simple.New(start)
		}, nil
	default:
		return nil, fmt.Errorf("unknown detector %q (want phi, chen, kappa or simple)", name)
	}
}
