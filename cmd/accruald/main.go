// Command accruald is the failure-detection service daemon the paper
// advocates (§1, §7): it listens for UDP heartbeats from monitored
// processes and serves their raw suspicion levels over HTTP/JSON, leaving
// all interpretation to the querying applications.
//
// Usage:
//
//	accruald [-udp :7946] [-http :8080] [-detector phi] [-interval 1s]
//	         [-ingest-workers N] [-ingest-queue 256] [-read-batch 16]
//	         [-listeners 1] [-profile default] [-intern-max 1048576]
//	         [-state-file accrual.state] [-state-interval 30s]
//	         [-qos-high 2] [-qos-low 1] [-pprof-addr localhost:6060]
//	         [-group east -peers host2:7946,host3:7946]
//	         [-federation-interval 1s] [-fanout 2] [-digest-topk 64]
//	         [-autotune -target-td 2s] [-target-tmr 5m] [-target-pa 0.99]
//	         [-autotune-interval 10s] [-autotune-step 0.25]
//
// With -target-td the daemon builds the online QoS autotuner
// (internal/autotune): GET /v1/tune serves a dry-run tuning plan and
// POST /v1/tune applies one controller round (`accrualctl tune
// plan|apply`). Adding -autotune runs the controller periodically,
// steering the reference-interpreter thresholds and the detectors'
// estimator windows toward the -target-* QoS bounds under the measured
// loss and jitter; every knob move is limited to ±autotune-step per
// round and every estimator retune preserves accrued suspicion
// (core.Retunable). Progress is observable via the accrual_autotune_*
// series on /v1/metrics.
//
// With -peers the daemon federates: every -federation-interval it
// digests its own slice of the fleet (the -digest-topk most suspected
// processes plus a per-group accrual rollup) into one AFG1 frame and
// gossips it to -fanout random peers on their heartbeat ports, relaying
// the freshest digest it holds from every other peer. -group names this
// daemon in the gossip (required with -peers) and tags every locally
// monitored process. The merged fleet view is served on GET /v1/cluster
// (see `accrualctl cluster`) and the gossip plane is observable through
// the accrual_federation_* series on /v1/metrics.
//
// At large memberships, -listeners N binds N UDP sockets to the same
// address with SO_REUSEPORT (Linux) so the kernel spreads heartbeat
// flows across N independent read loops, and -profile compact trades
// estimator-window depth for a smaller per-process footprint (see
// docs/TUNING.md). The id intern table shared by the decode path and the
// registry is capped at -intern-max distinct ids; past the cap, ids
// still work but each decode allocates (counted by
// accrual_intern_overflow_total).
//
// Ingest never blocks on a slow shard: each ingest worker owns a bounded
// queue (-ingest-queue) and a full queue sheds its newest packets with a
// counted drop (accrual_udp_packets_shed_total) instead of stalling the
// shared UDP read loop — one overloaded process degrades only its own
// heartbeat stream.
//
// The daemon is observable while it runs: GET /v1/metrics serves
// hot-path counters, UDP packet dispositions and online QoS estimates
// (mistake rate λ_M, query accuracy P_A, mean mistake recurrence
// T_MR, …) in the Prometheus text format, with -qos-high/-qos-low
// setting the reference interpreter's two thresholds. -pprof-addr
// additionally serves net/http/pprof on its own listener (keep it on
// localhost). See docs/OBSERVABILITY.md.
//
// With -state-file the daemon persists its detectors' learned state
// (estimator windows, arrival cursors) periodically and on shutdown, and
// warm-boots from the file on startup: a restarted daemon resumes with
// calibrated estimators instead of re-learning the network from scratch.
//
// Monitored processes send heartbeats with `accrualctl beat` (or any
// client speaking the packet format of internal/transport). Applications
// query:
//
//	GET /v1/processes                  ranked suspicion levels
//	GET /v1/suspicion?id=node-1        one process's level
//	GET /v1/status?id=node-1&threshold=3   client-chosen interpretation
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on its own mux, served only via -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"accrual/internal/autotune"
	"accrual/internal/chen"
	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/federation"
	"accrual/internal/kappa"
	"accrual/internal/phi"
	"accrual/internal/service"
	"accrual/internal/simple"
	"accrual/internal/telemetry"
	"accrual/internal/transport"
	"accrual/internal/transport/intern"
	"accrual/internal/transport/statecodec"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		log.Fatalf("accruald: %v", err)
	}
}

// run starts the daemon and blocks until ctx is cancelled or a component
// fails. When ready is non-nil it receives the bound UDP and HTTP
// addresses once both listeners are up (used by tests).
func run(ctx context.Context, args []string, ready chan<- [2]string) error {
	fs := flag.NewFlagSet("accruald", flag.ContinueOnError)
	var (
		udpAddr   = fs.String("udp", ":7946", "UDP address for incoming heartbeats")
		httpAddr  = fs.String("http", ":8080", "HTTP address for the query API")
		detName   = fs.String("detector", "phi", "detector per process: phi, chen, kappa, simple")
		interval  = fs.Duration("interval", time.Second, "expected heartbeat interval")
		logTrans  = fs.Bool("log-transitions", true, "log S-/T-transitions observed by an internal Algorithm 1 view")
		history   = fs.Int("history", 600, "level samples kept per process for /v1/history (0 disables)")
		shards    = fs.Int("shards", 0, "monitor registry shard count, rounded up to a power of two (0 = default 64)")
		ingestWk  = fs.Int("ingest-workers", runtime.GOMAXPROCS(0), "parallel heartbeat ingest goroutines (0 = ingest from the read loop)")
		ingestQ   = fs.Int("ingest-queue", 256, "per-worker ingest queue capacity; a full queue sheds newest packets (counted, never blocking the read loop)")
		readBatch = fs.Int("read-batch", 16, "datagrams drained per read syscall via recvmmsg where available (1 = plain reads)")
		listeners = fs.Int("listeners", 1, "UDP sockets sharing the heartbeat address via SO_REUSEPORT, each with its own read loop (degrades to 1 where unsupported)")
		profName  = fs.String("profile", "default", "memory profile: default, or compact (more shards, shallower estimator windows) for very large memberships")
		internMax = fs.Int("intern-max", 0, "max distinct process ids interned by the shared id table (0 = default 1048576)")
		stateFile = fs.String("state-file", "", "persist detector state here for warm restarts (empty disables)")
		stateIntv = fs.Duration("state-interval", 30*time.Second, "period between state-file saves")
		qosHigh   = fs.Float64("qos-high", float64(telemetry.DefaultQoSHigh), "online QoS reference threshold: suspect above this level")
		qosLow    = fs.Float64("qos-low", float64(telemetry.DefaultQoSLow), "online QoS reference threshold: trust again at or below this level")
		autoTune  = fs.Bool("autotune", false, "run the online QoS autotuner (requires -target-td)")
		tuneIntv  = fs.Duration("autotune-interval", 10*time.Second, "period between autotune controller rounds")
		targetTD  = fs.Duration("target-td", 0, "QoS target: max detection time T_D^U the autotuner steers toward")
		targetTMR = fs.Duration("target-tmr", 0, "QoS target: min mistake recurrence T_MR^L (0 = 100x -target-td)")
		targetPA  = fs.Float64("target-pa", 0, "QoS target: min query accuracy P_A; below it the autotuner widens the lateness budget (0 disables)")
		tuneStep  = fs.Float64("autotune-step", 0.25, "max relative knob change per autotune round (0 < step < 1)")
		pprofAddr = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables; keep it on localhost)")
		peers     = fs.String("peers", "", "comma-separated heartbeat addresses of peer daemons to federate with (requires -group)")
		fedIntv   = fs.Duration("federation-interval", federation.DefaultInterval, "gossip period between suspicion digests")
		fanout    = fs.Int("fanout", federation.DefaultFanout, "peers each gossip round sends digests to")
		digestTop = fs.Int("digest-topk", federation.DefaultTopK, "most-suspected processes carried per gossiped digest")
		group     = fs.String("group", "", "group tag for locally monitored processes; doubles as this daemon's federation identity")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := service.ParseProfile(*profName)
	if err != nil {
		return err
	}
	factory, err := detectorFactory(*detName, *interval, profile)
	if err != nil {
		return err
	}
	// Threshold validation is a hard boot failure here: the Hub option
	// falls back to defaults on invalid pairs (it has no error path), and
	// silently ignoring an operator's explicit -qos-high/-qos-low is
	// exactly the kind of seam an autotuner must not sit on.
	if _, err := telemetry.NewQoS(core.Level(*qosHigh), core.Level(*qosLow)); err != nil {
		return fmt.Errorf("-qos-high/-qos-low: %w", err)
	}
	hub := telemetry.NewHub(telemetry.WithQoSThresholds(core.Level(*qosHigh), core.Level(*qosLow)))
	// One id intern table serves both the UDP decode path and the
	// registry keys, so a million processes store each id string once.
	internOpts := []intern.Option{intern.WithOverflowCounter(&hub.Transport.InternOverflow)}
	if *internMax > 0 {
		internOpts = append(internOpts, intern.WithCapacity(*internMax))
	}
	ids := intern.New(internOpts...)
	monOpts := []service.MonitorOption{
		service.WithTelemetry(hub),
		service.WithProfile(profile),
		service.WithInterner(ids),
	}
	if *shards > 0 {
		monOpts = append(monOpts, service.WithShardCount(*shards))
	}
	if *peers != "" && *group == "" {
		return errors.New("-peers requires -group (the federation identity)")
	}
	if *group != "" {
		groupName := *group
		monOpts = append(monOpts, service.WithGroupFn(func(string) string { return groupName }))
	}
	mon := service.NewMonitor(clock.Wall{}, factory, monOpts...)

	var fed *federation.Federation
	if *peers != "" {
		fed, err = federation.New(federation.Config{
			Self:     *group,
			Peers:    strings.Split(*peers, ","),
			Monitor:  mon,
			Interval: *fedIntv,
			Fanout:   *fanout,
			TopK:     *digestTop,
			Hub:      hub,
		})
		if err != nil {
			return err
		}
	}

	// Online QoS estimation: sample every process's suspicion level on
	// the heartbeat cadence into the hub's streaming estimators.
	sampler := telemetry.StartSampler(hub.QoS(), mon, *interval)
	defer sampler.Stop()

	// Online QoS autotuning: close the loop between the estimators above
	// and the detector/threshold knobs. The controller is constructed
	// whenever a detection-time target is given (so `accrualctl tune
	// plan` works as a dry run); the background loop only runs with
	// -autotune.
	var tuner *autotune.Controller
	if *autoTune && *targetTD <= 0 {
		return errors.New("-autotune requires -target-td (the detection-time target)")
	}
	if *targetTD > 0 {
		tuner, err = autotune.New(autotune.Config{
			Monitor:  mon,
			QoS:      hub.QoS(),
			Counters: &hub.Autotune,
			Targets:  chen.QoS{MaxDetectionTime: *targetTD, MinMistakeRecurrence: *targetTMR},
			TargetPA: *targetPA,
			Detector: *detName,
			Every:    *tuneIntv,
			MaxStep:  *tuneStep,
		})
		if err != nil {
			return err
		}
	}

	// Warm boot: restore any persisted detector state before the
	// listeners open, so the first heartbeats land on calibrated
	// estimators. A missing file is a cold start, not an error.
	if *stateFile != "" {
		switch n, err := loadState(mon, *stateFile); {
		case errors.Is(err, os.ErrNotExist):
			log.Printf("state file %s absent: cold start", *stateFile)
		case err != nil:
			// A corrupt or mismatched state file must not keep the
			// detector down; log and run cold.
			log.Printf("warm boot from %s failed (running cold): %v", *stateFile, err)
		default:
			log.Printf("warm boot: restored %d processes from %s", n, *stateFile)
		}
	}

	lnOpts := []transport.ListenerOption{
		transport.WithTelemetry(hub),
		transport.WithInternTable(ids),
	}
	if fed != nil {
		lnOpts = append(lnOpts, transport.WithDigestHandler(fed.HandleDigest))
	}
	if *listeners > 1 {
		lnOpts = append(lnOpts, transport.WithListenerSockets(*listeners))
	}
	if *ingestWk > 0 {
		lnOpts = append(lnOpts, transport.WithIngestWorkers(*ingestWk))
	}
	if *ingestQ > 0 {
		lnOpts = append(lnOpts, transport.WithIngestQueueCap(*ingestQ))
	}
	if *readBatch > 0 {
		lnOpts = append(lnOpts, transport.WithReadBatch(*readBatch))
	}
	listener, err := transport.Listen(*udpAddr, mon, lnOpts...)
	if err != nil {
		return err
	}
	defer listener.Close()
	log.Printf("heartbeat listener on %s (detector=%s interval=%v ingest-workers=%d sockets=%d profile=%s)",
		listener.Addr(), *detName, *interval, *ingestWk, listener.Sockets(), profile)

	apiOpts := []transport.APIOption{
		transport.WithAPITelemetry(hub),
		transport.WithSampler(sampler),
	}
	if tuner != nil {
		apiOpts = append(apiOpts, transport.WithTuner(tuner))
		if *autoTune {
			tuner.Start()
			defer tuner.Stop()
			log.Printf("autotune: target T_D=%v T_MR=%v P_A=%.3g, every %v, max step %.0f%%",
				*targetTD, *targetTMR, *targetPA, *tuneIntv, *tuneStep*100)
		}
	}
	if fed != nil {
		fed.Start()
		defer fed.Stop()
		apiOpts = append(apiOpts, transport.WithClusterView(fed))
		log.Printf("federation as %q: %d peers, fanout %d, interval %v, top-k %d",
			*group, strings.Count(*peers, ",")+1, *fanout, *fedIntv, *digestTop)
	}
	if *logTrans {
		// An internal observer application using the paper's
		// parameter-free Algorithm 1; purely informational — client
		// interpretations are independent of it.
		app := mon.NewApp("accruald-log", service.AdaptivePolicy(),
			service.WithTransitionHandler(func(proc string, tr core.Transition, st core.Status) {
				log.Printf("transition: %s -> %s", proc, st)
			}))
		w := service.Watch(app, *interval)
		defer w.Stop()
		apiOpts = append(apiOpts, transport.WithWatcher(w))
	}
	if *history > 0 {
		rec := service.NewRecorder(mon, *history)
		runner := service.StartRecorder(rec, *interval)
		defer runner.Stop()
		apiOpts = append(apiOpts, transport.WithRecorder(rec))
	}

	if *pprofAddr != "" {
		// net/http/pprof registers on the default mux; serve that mux on
		// its own listener so profiling never shares a port with the
		// query API.
		pprofLn, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen %s: %w", *pprofAddr, err)
		}
		pprofSrv := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
		defer pprofSrv.Close()
		go func() { _ = pprofSrv.Serve(pprofLn) }()
		log.Printf("pprof on http://%s/debug/pprof/", pprofLn.Addr())
	}

	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *httpAddr, err)
	}
	srv := &http.Server{
		Handler:           transport.NewAPI(mon, apiOpts...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(httpLn) }()
	log.Printf("query API on %s", httpLn.Addr())
	if ready != nil {
		ready <- [2]string{listener.Addr().String(), httpLn.Addr().String()}
	}

	// Periodic state persistence, so even a hard kill loses at most one
	// save interval of learning.
	saverDone := make(chan struct{})
	if *stateFile != "" {
		go func() {
			defer close(saverDone)
			ticker := time.NewTicker(*stateIntv)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := saveState(mon, *stateFile); err != nil {
						log.Printf("state save: %v", err)
					}
				}
			}
		}()
	}

	select {
	case <-ctx.Done():
		log.Print("shutting down")
		if *stateFile != "" {
			<-saverDone
			if err := saveState(mon, *stateFile); err != nil {
				log.Printf("final state save: %v", err)
			} else {
				log.Printf("state saved to %s", *stateFile)
			}
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// saveState writes the monitor's exported state atomically: encode to a
// temp file in the target directory, fsync, rename. A crash mid-save
// leaves the previous snapshot intact.
func saveState(mon *service.Monitor, path string) error {
	data := statecodec.Encode(mon.ExportState())
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadState restores persisted state into the monitor, returning how
// many processes were restored.
func loadState(mon *service.Monitor, path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	st, err := statecodec.Decode(data)
	if err != nil {
		return 0, err
	}
	return mon.ImportState(st)
}

func detectorFactory(name string, interval time.Duration, profile service.Profile) (service.Factory, error) {
	switch name {
	case "phi":
		window := profile.EstimatorWindow(200)
		return func(_ string, start time.Time) core.Detector {
			return phi.New(start, phi.WithBootstrap(interval, interval/4), phi.WithWindowSize(window))
		}, nil
	case "chen":
		window := profile.EstimatorWindow(100)
		return func(_ string, start time.Time) core.Detector {
			return chen.New(start, interval, chen.WithWindowSize(window))
		}, nil
	case "kappa":
		return func(_ string, start time.Time) core.Detector {
			return kappa.New(start, kappa.PLater{}, kappa.WithFixedInterval(interval))
		}, nil
	case "simple":
		return func(_ string, start time.Time) core.Detector {
			return simple.New(start)
		}, nil
	default:
		return nil, fmt.Errorf("unknown detector %q (want phi, chen, kappa or simple)", name)
	}
}
