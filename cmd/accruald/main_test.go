package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/service"
	"accrual/internal/transport"
	"accrual/internal/transport/statecodec"
)

func TestDetectorFactory(t *testing.T) {
	for _, name := range []string{"phi", "chen", "kappa", "simple"} {
		f, err := detectorFactory(name, time.Second, service.ProfileDefault)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		det := f("p", time.Now())
		if det == nil {
			t.Fatalf("%s: nil detector", name)
		}
	}
	if _, err := detectorFactory("bogus", time.Second, service.ProfileDefault); err == nil {
		t.Error("unknown detector name should fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-detector", "bogus", "-udp", "127.0.0.1:0", "-http", "127.0.0.1:0"}, nil); err == nil {
		t.Error("bad detector should fail")
	}
	if err := run(ctx, []string{"-udp", "256.0.0.1:bad"}, nil); err == nil {
		t.Error("bad UDP address should fail")
	}
}

// TestDaemonEndToEnd boots the daemon on ephemeral ports, heartbeats it
// over real UDP, queries the HTTP API, and shuts it down cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time daemon test skipped in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan [2]string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-udp", "127.0.0.1:0", "-http", "127.0.0.1:0",
			"-interval", "20ms", "-log-transitions=false",
		}, ready)
	}()
	var addrs [2]string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	udpAddr, httpAddr := addrs[0], addrs[1]

	sender, err := transport.NewSender("node-1", udpAddr, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	defer sender.Stop()

	base := "http://" + httpAddr
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("node-1 never appeared in /v1/processes")
		}
		resp, err := http.Get(base + "/v1/processes")
		if err != nil {
			t.Fatal(err)
		}
		var pr transport.ProcessesResponse
		err = json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(pr.Processes) == 1 && pr.Processes[0].ID == "node-1" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get(base + "/v1/status?id=node-1&threshold=8")
	if err != nil {
		t.Fatal(err)
	}
	var st transport.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Status != "trusted" {
		t.Errorf("heartbeating node reported %q", st.Status)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonWarmRestart boots a daemon with -state-file, feeds it
// heartbeats, shuts it down (saving state), then boots a replacement
// from the same file and checks the processes come back warm — plus
// exercises GET /v1/state on the live daemon.
func TestDaemonWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time daemon test skipped in -short mode")
	}
	stateFile := filepath.Join(t.TempDir(), "accrual.state")

	boot := func() (context.CancelFunc, [2]string, chan error) {
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan [2]string, 1)
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, []string{
				"-udp", "127.0.0.1:0", "-http", "127.0.0.1:0",
				"-interval", "20ms", "-log-transitions=false",
				"-state-file", stateFile, "-state-interval", "50ms",
			}, ready)
		}()
		select {
		case addrs := <-ready:
			return cancel, addrs, done
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("daemon never became ready")
		}
		panic("unreachable")
	}

	cancel, addrs, done := boot()
	sender, err := transport.NewSender("node-1", addrs[0], 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}

	base := "http://" + addrs[1]
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("node-1 never appeared")
		}
		resp, err := http.Get(base + "/v1/suspicion?id=node-1")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The live state endpoint serves a decodable snapshot.
	resp, err := http.Get(base + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/state: %d, %v", resp.StatusCode, err)
	}
	if st, err := statecodec.Decode(dump); err != nil || st.Len() != 1 {
		t.Fatalf("state dump: %d procs, %v", st.Len(), err)
	}

	sender.Stop()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if _, err := os.Stat(stateFile); err != nil {
		t.Fatalf("state file not saved: %v", err)
	}

	// The replacement warm-boots: node-1 is known before any new
	// heartbeat arrives.
	cancel2, addrs2, done2 := boot()
	defer func() {
		cancel2()
		<-done2
	}()
	resp, err = http.Get("http://" + addrs2[1] + "/v1/suspicion?id=node-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("warm-booted daemon does not know node-1: status %d", resp.StatusCode)
	}
}

// TestSaveLoadStateRoundTrip exercises the atomic save and warm load
// directly, including the corrupt-file path.
func TestSaveLoadStateRoundTrip(t *testing.T) {
	clk := clock.NewManual(time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC))
	factory, err := detectorFactory("phi", 100*time.Millisecond, service.ProfileDefault)
	if err != nil {
		t.Fatal(err)
	}
	mon := service.NewMonitor(clk, factory)
	for seq := 1; seq <= 30; seq++ {
		at := clk.Advance(100 * time.Millisecond)
		_ = mon.Heartbeat(core.Heartbeat{From: "a", Seq: uint64(seq), Arrived: at})
	}

	path := filepath.Join(t.TempDir(), "s.state")
	if err := saveState(mon, path); err != nil {
		t.Fatalf("saveState: %v", err)
	}
	mon2 := service.NewMonitor(clock.NewManual(clk.Now()), factory)
	n, err := loadState(mon2, path)
	if err != nil || n != 1 {
		t.Fatalf("loadState = %d, %v", n, err)
	}
	a, _ := mon.Suspicion("a")
	b, _ := mon2.Suspicion("a")
	if a != b {
		t.Errorf("restored suspicion %v, live %v", b, a)
	}

	if _, err := loadState(mon2, filepath.Join(t.TempDir(), "absent")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("absent file: err = %v, want ErrNotExist", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.state")
	if err := os.WriteFile(bad, []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadState(mon2, bad); err == nil {
		t.Error("corrupt file should fail to load")
	}
}

// TestDaemonHistoryEndpoint boots the daemon with history recording and
// reads back a level trajectory over HTTP.
func TestDaemonHistoryEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time daemon test skipped in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan [2]string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-udp", "127.0.0.1:0", "-http", "127.0.0.1:0",
			"-interval", "15ms", "-history", "64", "-log-transitions=false",
		}, ready)
	}()
	var addrs [2]string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	sender, err := transport.NewSender("n1", addrs[0], 15*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	defer sender.Stop()

	base := "http://" + addrs[1]
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("history never accumulated")
		}
		resp, err := http.Get(base + "/v1/history?id=n1")
		if err != nil {
			t.Fatal(err)
		}
		var hr transport.HistoryResponse
		err = json.NewDecoder(resp.Body).Decode(&hr)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK && len(hr.Samples) >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
