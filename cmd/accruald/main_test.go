package main

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"accrual/internal/transport"
)

func TestDetectorFactory(t *testing.T) {
	for _, name := range []string{"phi", "chen", "kappa", "simple"} {
		f, err := detectorFactory(name, time.Second)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		det := f("p", time.Now())
		if det == nil {
			t.Fatalf("%s: nil detector", name)
		}
	}
	if _, err := detectorFactory("bogus", time.Second); err == nil {
		t.Error("unknown detector name should fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-detector", "bogus", "-udp", "127.0.0.1:0", "-http", "127.0.0.1:0"}, nil); err == nil {
		t.Error("bad detector should fail")
	}
	if err := run(ctx, []string{"-udp", "256.0.0.1:bad"}, nil); err == nil {
		t.Error("bad UDP address should fail")
	}
}

// TestDaemonEndToEnd boots the daemon on ephemeral ports, heartbeats it
// over real UDP, queries the HTTP API, and shuts it down cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time daemon test skipped in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan [2]string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-udp", "127.0.0.1:0", "-http", "127.0.0.1:0",
			"-interval", "20ms", "-log-transitions=false",
		}, ready)
	}()
	var addrs [2]string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	udpAddr, httpAddr := addrs[0], addrs[1]

	sender, err := transport.NewSender("node-1", udpAddr, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	defer sender.Stop()

	base := "http://" + httpAddr
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("node-1 never appeared in /v1/processes")
		}
		resp, err := http.Get(base + "/v1/processes")
		if err != nil {
			t.Fatal(err)
		}
		var pr transport.ProcessesResponse
		err = json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(pr.Processes) == 1 && pr.Processes[0].ID == "node-1" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get(base + "/v1/status?id=node-1&threshold=8")
	if err != nil {
		t.Fatal(err)
	}
	var st transport.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Status != "trusted" {
		t.Errorf("heartbeating node reported %q", st.Status)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonHistoryEndpoint boots the daemon with history recording and
// reads back a level trajectory over HTTP.
func TestDaemonHistoryEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time daemon test skipped in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan [2]string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-udp", "127.0.0.1:0", "-http", "127.0.0.1:0",
			"-interval", "15ms", "-history", "64", "-log-transitions=false",
		}, ready)
	}()
	var addrs [2]string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	sender, err := transport.NewSender("n1", addrs[0], 15*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	defer sender.Stop()

	base := "http://" + addrs[1]
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("history never accumulated")
		}
		resp, err := http.Get(base + "/v1/history?id=n1")
		if err != nil {
			t.Fatal(err)
		}
		var hr transport.HistoryResponse
		err = json.NewDecoder(resp.Body).Decode(&hr)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK && len(hr.Samples) >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
