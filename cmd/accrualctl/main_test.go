package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/service"
	"accrual/internal/simple"
	"accrual/internal/transport"
	"accrual/internal/transport/statecodec"
)

func newAPIServer(t *testing.T) (*httptest.Server, *clock.Manual, *service.Monitor) {
	t.Helper()
	clk := clock.NewManual(time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC))
	mon := service.NewMonitor(clk, func(_ string, start time.Time) core.Detector {
		return simple.New(start)
	})
	srv := httptest.NewServer(transport.NewAPI(mon))
	t.Cleanup(srv.Close)
	return srv, clk, mon
}

func TestUsagePaths(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no args exit = %d", code)
	}
	if code := run([]string{"frobnicate"}); code != 2 {
		t.Errorf("unknown subcommand exit = %d", code)
	}
}

func TestMissingIDErrors(t *testing.T) {
	for _, sub := range []string{"get", "status", "watch", "beat"} {
		if code := run([]string{sub}); code != 1 {
			t.Errorf("%s without -id exit = %d, want 1", sub, code)
		}
	}
}

func TestLsAgainstLiveAPI(t *testing.T) {
	srv, clk, mon := newAPIServer(t)
	if code := run([]string{"ls", "-api", srv.URL}); code != 0 {
		t.Errorf("ls (empty) exit = %d", code)
	}
	_ = mon.Heartbeat(core.Heartbeat{From: "n1", Seq: 1, Arrived: clk.Now()})
	if code := run([]string{"ls", "-api", srv.URL}); code != 0 {
		t.Errorf("ls exit = %d", code)
	}
}

func TestGetAndStatusAgainstLiveAPI(t *testing.T) {
	srv, clk, mon := newAPIServer(t)
	_ = mon.Heartbeat(core.Heartbeat{From: "n1", Seq: 1, Arrived: clk.Now()})
	clk.Advance(5 * time.Second)
	if code := run([]string{"get", "-api", srv.URL, "-id", "n1"}); code != 0 {
		t.Errorf("get exit = %d", code)
	}
	if code := run([]string{"get", "-api", srv.URL, "-id", "ghost"}); code != 1 {
		t.Errorf("get ghost exit = %d, want 1", code)
	}
	if code := run([]string{"status", "-api", srv.URL, "-id", "n1", "-threshold", "3"}); code != 0 {
		t.Errorf("status exit = %d", code)
	}
}

func TestAPIUnreachable(t *testing.T) {
	if code := run([]string{"ls", "-api", "http://127.0.0.1:1"}); code != 1 {
		t.Errorf("unreachable API exit = %d, want 1", code)
	}
}

func TestStateDumpRestore(t *testing.T) {
	srv, clk, mon := newAPIServer(t)
	_ = mon.Heartbeat(core.Heartbeat{From: "n1", Seq: 1, Arrived: clk.Now()})
	clk.Advance(time.Second)
	_ = mon.Heartbeat(core.Heartbeat{From: "n1", Seq: 2, Arrived: clk.Now()})

	dir := t.TempDir()
	dump := filepath.Join(dir, "state.bin")
	if code := run([]string{"state", "dump", "-api", srv.URL, "-o", dump}); code != 0 {
		t.Fatalf("state dump exit = %d", code)
	}
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := statecodec.Decode(data); err != nil || st.Len() != 1 {
		t.Fatalf("dumped state: %v procs, %v", st.Len(), err)
	}

	// Restore into a second fresh daemon.
	srv2, _, mon2 := newAPIServer(t)
	if code := run([]string{"state", "restore", "-api", srv2.URL, "-i", dump}); code != 0 {
		t.Fatalf("state restore exit = %d", code)
	}
	if !mon2.Known("n1") {
		t.Error("restored daemon does not know n1")
	}

	// Error paths.
	if code := run([]string{"state"}); code != 1 {
		t.Errorf("bare state exit = %d, want 1", code)
	}
	if code := run([]string{"state", "frobnicate"}); code != 1 {
		t.Errorf("unknown state subcommand exit = %d, want 1", code)
	}
	junk := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junk, []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"state", "restore", "-api", srv2.URL, "-i", junk}); code != 1 {
		t.Errorf("junk restore exit = %d, want 1", code)
	}
	if code := run([]string{"state", "restore", "-api", srv2.URL, "-i", filepath.Join(dir, "absent")}); code != 1 {
		t.Errorf("absent file restore exit = %d, want 1", code)
	}
}

func TestHistorySubcommand(t *testing.T) {
	srv, clk, mon := newAPIServer(t)
	_ = mon.Heartbeat(core.Heartbeat{From: "n1", Seq: 1, Arrived: clk.Now()})
	if code := run([]string{"history", "-api", srv.URL, "-id", "n1"}); code != 1 {
		t.Errorf("history without recorder exit = %d, want 1 (endpoint disabled)", code)
	}
	if code := run([]string{"history"}); code != 1 {
		t.Errorf("history without -id exit = %d, want 1", code)
	}
}
