package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"accrual/internal/telemetry"
)

// cmdTop renders a ranked per-process table from the daemon's
// /v1/metrics exposition: suspicion level plus the online QoS estimates
// (mistake rate λ_M, query accuracy P_A, mean mistake recurrence T_MR).
// With -once it prints a single table; otherwise it refreshes every
// -every until interrupted.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	api := fs.String("api", "http://127.0.0.1:8080", "daemon HTTP address")
	every := fs.Duration("every", 2*time.Second, "refresh period")
	once := fs.Bool("once", false, "print one table and exit")
	n := fs.Int("n", 0, "show only the n most suspected processes (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// One view for the whole run: the parser's scan/sample buffers, the
	// row map and the rank slice persist across refreshes, so the watch
	// loop reaches a steady state where a refresh allocates (almost)
	// nothing no matter how long it runs.
	var view topView
	if *once {
		return view.scrapeAndRender(os.Stdout, *api, *n)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	for {
		if err := view.scrapeAndRender(os.Stdout, *api, *n); err != nil {
			fmt.Fprintf(os.Stderr, "top: %v\n", err)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}

// topRow is one process's row, assembled from the per-process samples.
type topRow struct {
	id                     string
	level, lambda, pa, tmr float64
	gen                    uint64 // refresh that last touched this row
}

// topView is the reusable state of the top table: a text parser with
// retained buffers, the row map (rows survive across refreshes and are
// invalidated by generation counter instead of map churn) and the rank
// slice.
type topView struct {
	parser telemetry.TextParser
	rows   map[string]*topRow
	ranked []*topRow
	gen    uint64
}

// scrapeAndRender fetches one exposition and renders the table, reusing
// the view's buffers.
func (v *topView) scrapeAndRender(w io.Writer, api string, n int) error {
	resp, err := http.Get(api + "/v1/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/v1/metrics: %s (is the daemon running with telemetry?)", resp.Status)
	}
	samples, err := v.parser.Parse(resp.Body)
	if err != nil {
		return err
	}
	return v.render(w, samples, n)
}

// render turns parsed exposition samples into the ranked table.
// Processes are ordered most-suspected first; metrics that are not yet
// estimable (NaN) render as "-".
func (v *topView) render(w io.Writer, samples []telemetry.Sample, n int) error {
	if v.rows == nil {
		v.rows = map[string]*topRow{}
	}
	v.gen++
	row := func(proc string) *topRow {
		r, ok := v.rows[proc]
		if !ok {
			r = &topRow{id: proc}
			v.rows[proc] = r
		}
		if r.gen != v.gen {
			nan := math.NaN()
			r.level, r.lambda, r.pa, r.tmr = nan, nan, nan, nan
			r.gen = v.gen
		}
		return r
	}
	for _, s := range samples {
		proc := s.Label("proc")
		if proc == "" {
			continue
		}
		switch s.Name {
		case telemetry.MetricSuspicionLevel:
			row(proc).level = s.Value
		case telemetry.MetricQoSLambdaM:
			row(proc).lambda = s.Value
		case telemetry.MetricQoSPA:
			row(proc).pa = s.Value
		case telemetry.MetricQoSTMR:
			row(proc).tmr = s.Value
		}
	}
	ranked := v.ranked[:0]
	for id, r := range v.rows {
		if r.gen != v.gen {
			// Departed since the previous refresh.
			delete(v.rows, id)
			continue
		}
		ranked = append(ranked, r)
	}
	sort.Slice(ranked, func(i, j int) bool {
		li, lj := ranked[i].level, ranked[j].level
		// NaN levels sink to the bottom; ties break by id for stability.
		switch {
		case math.IsNaN(li) && !math.IsNaN(lj):
			return false
		case !math.IsNaN(li) && math.IsNaN(lj):
			return true
		case li != lj:
			return li > lj
		}
		return ranked[i].id < ranked[j].id
	})
	v.ranked = ranked
	if n > 0 && len(ranked) > n {
		ranked = ranked[:n]
	}
	fmt.Fprintf(w, "%-24s %10s %12s %8s %10s\n", "PROCESS", "SUSPICION", "MISTAKES/S", "P_A", "T_MR(S)")
	for _, r := range ranked {
		fmt.Fprintf(w, "%-24s %10s %12s %8s %10s\n",
			r.id, topCell(r.level, 4), topCell(r.lambda, 6), topCell(r.pa, 4), topCell(r.tmr, 1))
	}
	if len(ranked) == 0 {
		fmt.Fprintln(w, "(no monitored processes)")
	}
	return nil
}

// renderTop renders one table with a throwaway view — the one-shot
// entry point kept for tests and simple callers.
func renderTop(w io.Writer, samples []telemetry.Sample, n int) error {
	var v topView
	return v.render(w, samples, n)
}

// topCell formats one table value, rendering NaN (not yet estimable) as
// a dash.
func topCell(v float64, prec int) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.*f", prec, v)
}
