package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"accrual/internal/transport"
)

// cmdTune drives the daemon's autotuner: `tune plan` fetches the
// dry-run plan (GET /v1/tune), `tune apply` runs one controller round
// (POST /v1/tune). Both print the same current-vs-proposed table.
func cmdTune(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: accrualctl tune <plan|apply> [flags]")
	}
	var apply bool
	switch args[0] {
	case "plan":
	case "apply":
		apply = true
	default:
		return fmt.Errorf("usage: accrualctl tune <plan|apply> [flags]")
	}
	fs := flag.NewFlagSet("tune "+args[0], flag.ContinueOnError)
	api := fs.String("api", "http://127.0.0.1:8080", "daemon HTTP address")
	asJSON := fs.Bool("json", false, "print the raw plan JSON")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	var plan transport.TunePlanResponse
	if apply {
		if err := postJSON(*api, "/v1/tune", &plan); err != nil {
			return err
		}
	} else {
		if err := getJSON(*api, "/v1/tune", nil, &plan); err != nil {
			return err
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(plan)
	}
	printPlan(plan, apply)
	return nil
}

func printPlan(plan transport.TunePlanResponse, applied bool) {
	m := plan.Measured
	verb := "plan"
	if applied {
		verb = "round"
	}
	fmt.Printf("%s %d: %s\n", verb, plan.Round, plan.Reason)
	fmt.Printf("measured: %d procs (%d estimable, %d suspected), loss %.1f%%, interval %v (arrivals %v ± %v)\n",
		m.Procs, m.Estimable, m.Suspected, m.LossProb*100,
		time.Duration(m.IntervalNs), time.Duration(m.ArrivalMeanNs), time.Duration(m.ArrivalStdDevNs))
	if m.Detections > 0 {
		fmt.Printf("detections: %d recorded, mean T_D %v, max %v\n",
			m.Detections, time.Duration(m.DetectionMeanNs), time.Duration(m.DetectionMaxNs))
	}
	if !plan.Feasible {
		return
	}
	fmt.Printf("\n%-16s %14s %14s\n", "KNOB", "CURRENT", "PROPOSED")
	fmt.Printf("%-16s %14.4f %14.4f\n", "threshold-high", plan.Current.ThresholdHigh, plan.Proposed.ThresholdHigh)
	fmt.Printf("%-16s %14.4f %14.4f\n", "threshold-low", plan.Current.ThresholdLow, plan.Proposed.ThresholdLow)
	fmt.Printf("%-16s %14d %14d\n", "window-size", plan.Current.WindowSize, plan.Proposed.WindowSize)
	fmt.Printf("%-16s %14v %14v\n", "interval",
		time.Duration(plan.Current.IntervalNs), time.Duration(plan.Proposed.IntervalNs))
	fmt.Printf("\npredicted: T_D %v, T_MR %v (trim %.3f",
		time.Duration(plan.PredictedDetectionNs), time.Duration(plan.PredictedRecurrenceNs), plan.Trim)
	if plan.Clamped {
		fmt.Printf(", step-clamped")
	}
	fmt.Printf(")\nrecommended protocol: interval %v, margin %v\n",
		time.Duration(plan.RecommendedIntervalNs), time.Duration(plan.RecommendedAlphaNs))
	if applied {
		if plan.Applied {
			fmt.Printf("applied: %d detectors retuned, %d skipped\n",
				plan.TunedDetectors, plan.SkippedDetectors)
		} else {
			fmt.Println("not applied")
		}
	}
	if len(plan.Groups) > 1 {
		fmt.Printf("\n%-16s %8s %10s %12s\n", "GROUP", "PROCS", "LOSS", "ARRIVAL")
		for _, g := range plan.Groups {
			name := g.Group
			if name == "" {
				name = "(default)"
			}
			fmt.Printf("%-16s %8d %9.1f%% %12v\n", name, g.Procs, g.LossProb*100, time.Duration(g.ArrivalMeanNs))
		}
	}
}

// postJSON POSTs an empty body and decodes the JSON response, with the
// same error shaping as getJSON.
func postJSON(api, path string, out any) error {
	resp, err := http.Post(api+path, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %s (%s)", path, resp.Status, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
