// Command accrualctl is the client companion to accruald.
//
// Subcommands:
//
//	accrualctl beat -id node-1 -to host:7946 [-interval 1s] [-sender-backoff 30s]
//	               [-batch 32] [-flush 50ms]
//	    run a heartbeat sender for this process (blocks; ^C to stop);
//	    an unreachable daemon is redialed with exponential backoff and
//	    DNS re-resolution, capped at -sender-backoff. A comma-separated
//	    -id heartbeats for many local processes at once; -batch/-flush
//	    coalesce beats into AFB1 batch datagrams (see docs/TUNING.md)
//	accrualctl ls   [-api http://host:8080]
//	    list all monitored processes ranked by suspicion level
//	accrualctl get  -id node-1 [-api ...]
//	    print one process's suspicion level
//	accrualctl status -id node-1 -threshold 3 [-api ...]
//	    interpret the level with a client-side threshold (D_T)
//	accrualctl watch -id node-1 [-every 1s] [-api ...]
//	    poll and print the level periodically
//	accrualctl history -id node-1 [-api ...]
//	    print the daemon's recorded level samples for a process
//	accrualctl state dump [-api ...] [-o state.bin]
//	    download the daemon's detector state (binary snapshot)
//	accrualctl state restore [-api ...] [-i state.bin]
//	    upload a snapshot into a (typically fresh) daemon
//	accrualctl top [-api ...] [-every 2s] [-once] [-n 10]
//	    ranked live table of suspicion and online QoS estimates
//	    (λ_M, P_A, T_MR) scraped from the daemon's /v1/metrics
//	accrualctl cluster [-api ...] [-suspects] [-groups]
//	    print a federated daemon's merged fleet view (GET /v1/cluster):
//	    every gossip peer with its digest freshness, the merged
//	    most-suspected processes and the per-group accrual rollups
//	accrualctl tune plan [-api ...] [-json]
//	    print the autotuner's dry-run plan: measured channel statistics,
//	    current vs proposed knobs and the predicted QoS (GET /v1/tune)
//	accrualctl tune apply [-api ...] [-json]
//	    run one autotune controller round now and print the applied
//	    plan (POST /v1/tune)
//
// `state dump | state restore` is the live handoff path: pipe one
// daemon's learned estimator state straight into its replacement so the
// new daemon starts warm instead of re-learning the network.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"accrual/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "beat":
		err = cmdBeat(args[1:])
	case "ls":
		err = cmdLs(args[1:])
	case "get":
		err = cmdGet(args[1:])
	case "status":
		err = cmdStatus(args[1:])
	case "watch":
		err = cmdWatch(args[1:])
	case "history":
		err = cmdHistory(args[1:])
	case "state":
		err = cmdState(args[1:])
	case "top":
		err = cmdTop(args[1:])
	case "cluster":
		err = cmdCluster(args[1:])
	case "tune":
		err = cmdTune(args[1:])
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "accrualctl: %v\n", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: accrualctl <beat|ls|get|status|watch|history|state|top|cluster|tune> [flags]")
}

func cmdHistory(args []string) error {
	fs := flag.NewFlagSet("history", flag.ContinueOnError)
	api := fs.String("api", "http://127.0.0.1:8080", "daemon HTTP address")
	id := fs.String("id", "", "process id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	var resp transport.HistoryResponse
	if err := getJSON(*api, "/v1/history", url.Values{"id": {*id}}, &resp); err != nil {
		return err
	}
	for _, s := range resp.Samples {
		fmt.Printf("%s  %.6f\n", s.At.Format(time.RFC3339Nano), s.Level)
	}
	return nil
}

func cmdState(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: accrualctl state <dump|restore> [flags]")
	}
	switch args[0] {
	case "dump":
		return cmdStateDump(args[1:])
	case "restore":
		return cmdStateRestore(args[1:])
	default:
		return fmt.Errorf("unknown state subcommand %q (want dump or restore)", args[0])
	}
}

func cmdStateDump(args []string) error {
	fs := flag.NewFlagSet("state dump", flag.ContinueOnError)
	api := fs.String("api", "http://127.0.0.1:8080", "daemon HTTP address")
	out := fs.String("o", "", "write the snapshot here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := http.Get(*api + "/v1/state")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/v1/state: %s", resp.Status)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	n, err := io.Copy(w, resp.Body)
	if err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d bytes to %s\n", n, *out)
	}
	return nil
}

func cmdStateRestore(args []string) error {
	fs := flag.NewFlagSet("state restore", flag.ContinueOnError)
	api := fs.String("api", "http://127.0.0.1:8080", "daemon HTTP address")
	in := fs.String("i", "", "read the snapshot from here (default stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	req, err := http.NewRequest(http.MethodPut, *api+"/v1/state", r)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("/v1/state: %s (%s)", resp.Status, e.Error)
	}
	var restored transport.StateRestoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&restored); err != nil {
		return err
	}
	fmt.Printf("restored %d processes\n", restored.Restored)
	return nil
}

// cmdCluster prints the merged fleet view of a federated daemon: the
// peer table always, the merged suspect ranking and the per-group
// rollups on request (both by default).
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	api := fs.String("api", "http://127.0.0.1:8080", "daemon HTTP address")
	suspects := fs.Bool("suspects", false, "print only the merged suspect ranking")
	groups := fs.Bool("groups", false, "print only the per-group rollups")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var info transport.ClusterInfo
	if err := getJSON(*api, "/v1/cluster", nil, &info); err != nil {
		return err
	}
	all := !*suspects && !*groups
	if all {
		fmt.Printf("self: %s   peers: %d known / %d configured\n",
			info.Self, len(info.Peers), len(info.ConfiguredPeers))
		fmt.Printf("%-16s %8s %8s %12s %s\n", "PEER", "SEQ", "PROCS", "STALENESS", "STATE")
		for _, p := range info.Peers {
			state := "fresh"
			if p.Stale {
				state = "stale"
			}
			fmt.Printf("%-16s %8d %8d %11.1fs %s\n", p.Peer, p.Seq, p.Procs, p.StalenessSeconds, state)
		}
	}
	if all || *suspects {
		fmt.Printf("\n%-24s %-16s %10s %10s\n", "PROCESS", "OWNER", "SUSPICION", "AGE")
		for _, s := range info.Suspects {
			owner := s.Owner
			if owner == "" {
				owner = info.Self + " (self)"
			}
			mark := ""
			if s.Stale {
				mark = "  (stale)"
			}
			fmt.Printf("%-24s %-16s %10.4f %9.1fs%s\n", s.ID, owner, s.Level, s.AgeSeconds, mark)
		}
	}
	if all || *groups {
		fmt.Printf("\n%-16s %-16s %8s %10s %10s\n", "GROUP", "OWNER", "PROCS", "IMPACT", "MAX")
		for _, g := range info.Groups {
			owner := g.Owner
			if owner == "" {
				owner = info.Self + " (self)"
			}
			name := g.Group
			if name == "" {
				name = "(default)"
			}
			mark := ""
			if g.Stale {
				mark = "  (stale)"
			}
			fmt.Printf("%-16s %-16s %8d %10.4f %10.4f%s\n", name, owner, g.Procs, g.Impact, g.Max, mark)
		}
	}
	return nil
}

func cmdBeat(args []string) error {
	fs := flag.NewFlagSet("beat", flag.ContinueOnError)
	id := fs.String("id", "", "process id to announce (comma-separate several to heartbeat for many local processes)")
	to := fs.String("to", "127.0.0.1:7946", "daemon UDP address")
	interval := fs.Duration("interval", time.Second, "heartbeat interval")
	backoff := fs.Duration("sender-backoff", 30*time.Second, "maximum redial backoff after the daemon becomes unreachable (redials re-resolve DNS)")
	batch := fs.Int("batch", 0, "coalesce up to this many beats into one AFB1 datagram (0 disables; multiple -id values default to one frame per round)")
	flush := fs.Duration("flush", 0, "hold a partial batch up to this long before flushing (0 flushes every round)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	ids := strings.Split(*id, ",")
	backoffMin := time.Second
	if *backoff < backoffMin {
		backoffMin = *backoff
	}
	opts := []transport.SenderOption{transport.WithSenderBackoff(backoffMin, *backoff)}
	if *batch > 0 || *flush > 0 {
		n := *batch
		if n <= 0 {
			n = len(ids)
		}
		opts = append(opts, transport.WithBatch(n, *flush))
	}
	sender, err := transport.NewGroupSender(ids, *to, *interval, opts...)
	if err != nil {
		return err
	}
	if err := sender.Start(); err != nil {
		return err
	}
	defer sender.Stop()
	fmt.Printf("heartbeating as %q to %s every %v (^C to stop)\n", *id, *to, *interval)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Printf("stopped after %d heartbeats\n", sender.Sent())
	return nil
}

func getJSON(api, path string, query url.Values, out any) error {
	u := api + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %s (%s)", path, resp.Status, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ContinueOnError)
	api := fs.String("api", "http://127.0.0.1:8080", "daemon HTTP address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var resp transport.ProcessesResponse
	if err := getJSON(*api, "/v1/processes", nil, &resp); err != nil {
		return err
	}
	if len(resp.Processes) == 0 {
		fmt.Println("no monitored processes")
		return nil
	}
	fmt.Printf("%-24s %s\n", "PROCESS", "SUSPICION")
	for _, p := range resp.Processes {
		fmt.Printf("%-24s %.4f\n", p.ID, p.Level)
	}
	return nil
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ContinueOnError)
	api := fs.String("api", "http://127.0.0.1:8080", "daemon HTTP address")
	id := fs.String("id", "", "process id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	var p transport.ProcessLevel
	if err := getJSON(*api, "/v1/suspicion", url.Values{"id": {*id}}, &p); err != nil {
		return err
	}
	fmt.Printf("%.6f\n", p.Level)
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	api := fs.String("api", "http://127.0.0.1:8080", "daemon HTTP address")
	id := fs.String("id", "", "process id")
	threshold := fs.Float64("threshold", 3, "suspicion threshold (client-side interpretation)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	var st transport.StatusResponse
	q := url.Values{"id": {*id}, "threshold": {strconv.FormatFloat(*threshold, 'g', -1, 64)}}
	if err := getJSON(*api, "/v1/status", q, &st); err != nil {
		return err
	}
	fmt.Printf("%s (level %.4f, threshold %.2f)\n", st.Status, st.Level, st.Threshold)
	return nil
}

func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	api := fs.String("api", "http://127.0.0.1:8080", "daemon HTTP address")
	id := fs.String("id", "", "process id")
	every := fs.Duration("every", time.Second, "poll period")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	for {
		var p transport.ProcessLevel
		if err := getJSON(*api, "/v1/suspicion", url.Values{"id": {*id}}, &p); err != nil {
			fmt.Fprintf(os.Stderr, "watch: %v\n", err)
		} else {
			fmt.Printf("%s  %s  %.6f\n", time.Now().Format(time.RFC3339), *id, p.Level)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}
