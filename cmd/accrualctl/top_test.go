package main

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"accrual/internal/clock"
	"accrual/internal/core"
	"accrual/internal/service"
	"accrual/internal/simple"
	"accrual/internal/telemetry"
	"accrual/internal/transport"
)

// newTelemetryAPIServer is newAPIServer with a telemetry hub wired in,
// so /v1/metrics serves real online estimates.
func newTelemetryAPIServer(t *testing.T) (*httptest.Server, *clock.Manual, *service.Monitor, *telemetry.Hub) {
	t.Helper()
	clk := clock.NewManual(time.Date(2005, 3, 22, 0, 0, 0, 0, time.UTC))
	hub := telemetry.NewHub()
	mon := service.NewMonitor(clk, func(_ string, start time.Time) core.Detector {
		return simple.New(start)
	}, service.WithTelemetry(hub))
	srv := httptest.NewServer(transport.NewAPI(mon, transport.WithAPITelemetry(hub)))
	t.Cleanup(srv.Close)
	return srv, clk, mon, hub
}

func TestTopAgainstLiveAPI(t *testing.T) {
	srv, clk, mon, hub := newTelemetryAPIServer(t)
	for seq := 1; seq <= 3; seq++ {
		at := clk.Advance(time.Second)
		_ = mon.Heartbeat(core.Heartbeat{From: "steady", Seq: uint64(seq), Arrived: at})
		_ = mon.Heartbeat(core.Heartbeat{From: "flaky", Seq: uint64(seq), Arrived: at})
		hub.QoS().Sample(mon)
	}
	// flaky goes silent; its level climbs above steady's.
	for i := 0; i < 5; i++ {
		at := clk.Advance(time.Second)
		_ = mon.Heartbeat(core.Heartbeat{From: "steady", Seq: uint64(4 + i), Arrived: at})
		hub.QoS().Sample(mon)
	}
	if code := run([]string{"top", "-once", "-api", srv.URL}); code != 0 {
		t.Errorf("top exit = %d", code)
	}
	if code := run([]string{"top", "-once", "-n", "1", "-api", srv.URL}); code != 0 {
		t.Errorf("top -n exit = %d", code)
	}
}

func TestTopWithoutTelemetry(t *testing.T) {
	srv, _, _ := newAPIServer(t)
	if code := run([]string{"top", "-once", "-api", srv.URL}); code != 1 {
		t.Errorf("top against telemetry-less daemon exit = %d, want 1", code)
	}
}

// TestRenderTopRanking pins the table shape: most-suspected first, NaN
// metrics as dashes, -n truncation, NaN levels at the bottom.
func TestRenderTopRanking(t *testing.T) {
	nan := math.NaN()
	samples := []telemetry.Sample{
		{Name: telemetry.MetricSuspicionLevel, Labels: map[string]string{"proc": "calm"}, Value: 0.5},
		{Name: telemetry.MetricSuspicionLevel, Labels: map[string]string{"proc": "hot"}, Value: 9.25},
		{Name: telemetry.MetricSuspicionLevel, Labels: map[string]string{"proc": "fresh"}, Value: nan},
		{Name: telemetry.MetricQoSLambdaM, Labels: map[string]string{"proc": "hot"}, Value: 0.01},
		{Name: telemetry.MetricQoSPA, Labels: map[string]string{"proc": "hot"}, Value: 0.875},
		{Name: telemetry.MetricQoSTMR, Labels: map[string]string{"proc": "hot"}, Value: 120},
		{Name: telemetry.MetricQoSPA, Labels: map[string]string{"proc": "calm"}, Value: nan},
		{Name: "accrual_heartbeats_ingested_total", Labels: map[string]string{}, Value: 42},
	}
	var sb strings.Builder
	if err := renderTop(&sb, samples, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header + 3 rows:\n%s", len(lines), out)
	}
	for i, prefix := range []string{"PROCESS", "hot", "calm", "fresh"} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}
	if !strings.Contains(lines[1], "9.2500") || !strings.Contains(lines[1], "0.8750") ||
		!strings.Contains(lines[1], "120.0") {
		t.Errorf("hot row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "-") {
		t.Errorf("calm row should dash its NaN estimates: %q", lines[2])
	}

	sb.Reset()
	if err := renderTop(&sb, samples, 1); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 2 {
		t.Errorf("-n 1 output has %d lines, want header + 1 row", got)
	}

	sb.Reset()
	if err := renderTop(&sb, nil, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no monitored processes") {
		t.Errorf("empty table output = %q", sb.String())
	}
}

// TestTopViewReuseAcrossRefreshes drives one topView through refreshes
// with changing membership: rows must carry no stale values over from
// the previous scrape, departed processes must drop out, and the output
// must match a throwaway render of the same samples.
func TestTopViewReuseAcrossRefreshes(t *testing.T) {
	mk := func(pairs ...any) []telemetry.Sample {
		var out []telemetry.Sample
		for i := 0; i < len(pairs); i += 2 {
			out = append(out, telemetry.Sample{
				Name:   telemetry.MetricSuspicionLevel,
				Labels: map[string]string{"proc": pairs[i].(string)},
				Value:  pairs[i+1].(float64),
			})
		}
		return out
	}
	var v topView
	rounds := [][]telemetry.Sample{
		mk("a", 1.0, "b", 2.0, "c", 3.0),
		mk("a", 5.0, "c", 0.5), // b departs, order flips
		mk("d", 9.0),           // everyone but a newcomer departs
	}
	for i, samples := range rounds {
		var got, want strings.Builder
		if err := v.render(&got, samples, 0); err != nil {
			t.Fatal(err)
		}
		if err := renderTop(&want, samples, 0); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("round %d: reused view diverges from one-shot render\n--- got ---\n%s--- want ---\n%s",
				i, got.String(), want.String())
		}
	}
	if len(v.rows) != 1 {
		t.Errorf("rows retained = %d, want only the final survivor", len(v.rows))
	}
	// A QoS value seen for a process in round 0 must not bleed into a
	// later round where only its level is exposed.
	var sb strings.Builder
	_ = v.render(&sb, []telemetry.Sample{
		{Name: telemetry.MetricQoSPA, Labels: map[string]string{"proc": "e"}, Value: 0.5},
		{Name: telemetry.MetricSuspicionLevel, Labels: map[string]string{"proc": "e"}, Value: 1.0},
	}, 0)
	sb.Reset()
	_ = v.render(&sb, mk("e", 1.0), 0)
	if line := strings.Split(sb.String(), "\n")[1]; !strings.Contains(line, "-") {
		t.Errorf("stale P_A survived a refresh: %q", line)
	}
}
